package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

// edgeFaults is a hand-written fault schedule for tests: listed edges
// never deliver, listed nodes are dead from round 0.
type edgeFaults struct {
	down map[routing.Edge]bool
	dead map[graph.NodeID]bool
}

func (f edgeFaults) NodeDead(_ int, n graph.NodeID) bool { return f.dead[n] }
func (f edgeFaults) Deliver(_ int, e routing.Edge, _ int) bool {
	return !f.down[e]
}

func TestLossyZeroFaultsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		inst := buildInstance(t, rng, 40, 6, 6, trial == 1)
		p, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		readings := randomReadings(rng, inst.Net.Len())
		plain, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		lossy, err := eng.RunLossy(trial, readings, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		if lossy.EnergyJ != plain.EnergyJ {
			t.Fatalf("trial %d: energy %v != %v", trial, lossy.EnergyJ, plain.EnergyJ)
		}
		if len(lossy.Values) != len(plain.Values) {
			t.Fatalf("trial %d: %d values, want %d", trial, len(lossy.Values), len(plain.Values))
		}
		for d, v := range plain.Values {
			if lossy.Values[d] != v {
				t.Fatalf("trial %d: value at %d = %v, want %v (bit-exact)", trial, d, lossy.Values[d], v)
			}
		}
		for n, j := range plain.PerNodeJ {
			if lossy.PerNodeJ[n] != j {
				t.Fatalf("trial %d: per-node energy at %d differs", trial, n)
			}
		}
		if lossy.Messages != plain.Messages || lossy.Transmissions != plain.Messages {
			t.Fatalf("trial %d: %d msgs / %d tx, want %d planned, zero retries",
				trial, lossy.Messages, lossy.Transmissions, plain.Messages)
		}
		if lossy.Dropped != 0 || lossy.Retries != 0 {
			t.Fatalf("trial %d: dropped=%d retries=%d on a fault-free run", trial, lossy.Dropped, lossy.Retries)
		}
		for d, rep := range lossy.Reports {
			if !rep.Fresh || rep.Starved || len(rep.Missing) != 0 {
				t.Fatalf("trial %d: dest %d not fresh: %+v", trial, d, rep)
			}
		}
	}
}

// lineInstance builds 0—1—2—…: one spec, dest at the end of the line.
func lineInstance(t *testing.T, n int, srcs []graph.NodeID) *plan.Instance {
	t.Helper()
	g := graph.NewUndirected(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	w := make(map[graph.NodeID]float64, len(srcs))
	for _, s := range srcs {
		w[s] = 1
	}
	specs := []agg.Spec{{Dest: graph.NodeID(n - 1), Func: agg.NewWeightedSum(w)}}
	inst, err := plan.NewInstance(g, routing.NewReversePath(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestLossyDroppedEdgeStarvesAndKeepsAlive(t *testing.T) {
	// 0—1—2—3, dest 3 sums sources {0, 2}. Killing every delivery on
	// 0→1 starves source 0; the relay at 1 still keep-alives, and node 2's
	// own reading keeps the destination partially served (stale).
	inst := lineInstance(t, 4, []graph.NodeID{0, 2})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 0, 2: 7, 3: 0}
	const retries = 2
	res, err := eng.RunLossy(0, readings, edgeFaults{down: map[routing.Edge]bool{{From: 0, To: 1}: true}}, retries)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reports[3]
	if rep == nil || rep.Fresh || rep.Starved {
		t.Fatalf("report = %+v, want stale partial", rep)
	}
	if len(rep.Covered) != 1 || rep.Covered[0] != 2 || len(rep.Missing) != 1 || rep.Missing[0] != 0 {
		t.Fatalf("coverage = %v missing %v, want covered [2] missing [0]", rep.Covered, rep.Missing)
	}
	if got := res.Values[3]; got != 7 {
		t.Fatalf("partial value = %v, want 7 (source 2 only)", got)
	}
	sawDrop, sawKeepAlive := false, false
	for _, o := range res.Outcomes {
		if o.Edge == (routing.Edge{From: 0, To: 1}) {
			if o.Delivered || o.Attempts != retries+1 {
				t.Fatalf("broken edge outcome %+v, want %d failed attempts", o, retries+1)
			}
			sawDrop = true
		}
		if o.Edge == (routing.Edge{From: 1, To: 2}) {
			// Relay 1 lost its only payload but must transmit empty.
			if !o.Delivered || o.Attempts == 0 || o.BodyBytes != 0 {
				t.Fatalf("keep-alive outcome %+v, want delivered empty message", o)
			}
			sawKeepAlive = true
		}
	}
	if !sawDrop || !sawKeepAlive {
		t.Fatalf("outcomes missing drop (%v) or keep-alive (%v): %+v", sawDrop, sawKeepAlive, res.Outcomes)
	}
	if res.Retries != retries {
		t.Fatalf("retries = %d, want %d (only the broken edge retries)", res.Retries, retries)
	}
}

func TestLossyRetryEnergyAccounting(t *testing.T) {
	inst := lineInstance(t, 3, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	model := radio.DefaultModel()
	eng, err := NewEngine(p, model, Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 1}
	res, err := eng.RunLossy(0, readings, edgeFaults{down: map[routing.Edge]bool{{From: 0, To: 1}: true}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the expected energy from the outcomes.
	want := 0.0
	for _, o := range res.Outcomes {
		if o.Delivered && o.Attempts == 1 {
			want += model.UnicastJoules(o.BodyBytes)
		} else {
			want += float64(o.Attempts) * model.TxJoules(o.BodyBytes)
			if o.Delivered {
				want += model.RxJoules(o.BodyBytes)
			}
		}
	}
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("energy %v, want %v from outcomes", res.EnergyJ, want)
	}
	sum := 0.0
	for _, j := range res.PerNodeJ {
		sum += j
	}
	if math.Abs(sum-res.EnergyJ) > 1e-12 {
		t.Fatalf("per-node sum %v != total %v", sum, res.EnergyJ)
	}
	// Four failed attempts on 0→1, then 1→2 keep-alives: dest starves.
	if !res.Reports[2].Starved {
		t.Fatalf("report = %+v, want starved", res.Reports[2])
	}
	if len(res.Values) != 0 {
		t.Fatalf("starved destination produced value %v", res.Values)
	}
}

func TestLossyCrashedNode(t *testing.T) {
	// 0—1—2—3, dest 3 sums {0, 1, 2}; node 1 is dead. Its reading is gone
	// and it transmits nothing (silent), so 3 sees only what node 2
	// contributes.
	inst := lineInstance(t, 4, []graph.NodeID{0, 1, 2})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 3, 1: 11, 2: 7, 3: 0}
	res, err := eng.RunLossy(0, readings, edgeFaults{dead: map[graph.NodeID]bool{1: true}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Edge.From == 1 {
			if o.Attempts != 0 || o.Delivered {
				t.Fatalf("dead sender transmitted: %+v", o)
			}
		}
		if o.Edge.To == 1 && o.Delivered {
			t.Fatalf("dead receiver acked: %+v", o)
		}
	}
	rep := res.Reports[3]
	if rep.Fresh || rep.Starved {
		t.Fatalf("report = %+v, want stale partial", rep)
	}
	if got := res.Values[3]; got != 7 {
		t.Fatalf("value = %v, want 7 (only node 2 survives the cut)", got)
	}
	// A dead node spends nothing.
	if res.PerNodeJ[1] != 0 {
		t.Fatalf("dead node spent %v J", res.PerNodeJ[1])
	}
}

func TestLossyDeadDestination(t *testing.T) {
	inst := lineInstance(t, 3, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunLossy(0, map[graph.NodeID]float64{0: 1}, edgeFaults{dead: map[graph.NodeID]bool{2: true}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reports[2]
	if !rep.DestDead || !rep.Starved {
		t.Fatalf("report = %+v, want dead+starved", rep)
	}
	if _, ok := res.Values[2]; ok {
		t.Fatal("dead destination produced a value")
	}
	// The last-hop sender burned its full retry budget with no ACK.
	for _, o := range res.Outcomes {
		if o.Edge.To == 2 && (o.Delivered || o.Attempts != 2) {
			t.Fatalf("outcome toward dead dest: %+v", o)
		}
	}
}

func TestLossyRejectsNegativeRetries(t *testing.T) {
	inst := lineInstance(t, 3, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunLossy(0, nil, nil, -1); err == nil {
		t.Error("negative retry budget accepted")
	}
}
