package sim

import (
	"fmt"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/routing"
)

// Faults is the fault schedule the lossy executor queries while a round
// runs (chaos.Injector implements it). Both methods must be deterministic
// in their arguments so repeated rounds are reproducible.
type Faults interface {
	// NodeDead reports whether n has permanently crashed by the given
	// round. A dead node neither transmits, receives, nor samples.
	NodeDead(round int, n graph.NodeID) bool
	// Deliver reports whether the attempt-th transmission of the round on
	// e is heard by e.To (liveness of the endpoints is gated separately).
	Deliver(round int, e routing.Edge, attempt int) bool
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// noFaults is the identity schedule: every transmission arrives.
type noFaults struct{}

func (noFaults) NodeDead(int, graph.NodeID) bool     { return false }
func (noFaults) Deliver(int, routing.Edge, int) bool { return true }

// Epochs is the optional plan-epoch view of a fault schedule: sessions
// that reconfigure in place implement it next to Faults to fence the
// executors during dissemination. PlanEpoch is the epoch of the plan the
// engine is executing; NodeEpoch is the epoch of the routing tables
// installed at n. A frame crossing an edge whose endpoints do not both run
// PlanEpoch is transmitted and heard — both radios pay — but the receiver
// discards it instead of merging (counted in EpochDropped), so a node on a
// stale plan degrades coverage rather than corrupting aggregates.
type Epochs interface {
	PlanEpoch() uint32
	NodeEpoch(n graph.NodeID) uint32
}

// DeliveryReport describes how well one destination was served by a lossy
// round: exactly (fresh), over partial source coverage (stale), or not at
// all (starved).
type DeliveryReport struct {
	// Dest is the destination node.
	Dest graph.NodeID
	// Fresh is true when every source of f_d reached the destination and
	// the reported value is exact.
	Fresh bool
	// Covered lists the sources whose readings made it into the value,
	// ascending. Missing lists the rest.
	Covered []graph.NodeID
	Missing []graph.NodeID
	// Starved is true when no source reached the destination at all (no
	// value was produced this round).
	Starved bool
	// DestDead is true when the destination itself has crashed; such a
	// destination is also reported as starved.
	DestDead bool

	// The remaining fields are filled by the asynchronous executor (and,
	// for AgeRounds, by sessions that keep a last-known-value cache); the
	// synchronous executors leave them zero.

	// ClosedAtMS is the simulated time at which the destination's round
	// closed: when its last input resolved, or at the deadline.
	ClosedAtMS float64
	// DeadlineHit is true when the round's deadline forced the close while
	// inputs were still unresolved — the graceful-degradation path. A
	// deadline-hit destination is never fresh.
	DeadlineHit bool
	// AgeRounds is how many rounds have passed since this destination was
	// last served fresh (0 when fresh this round).
	AgeRounds int
	// LastKnown is the most recent exact value the last-known-value cache
	// holds for this destination; HasLastKnown guards it. A starved or
	// stale destination's consumer can fall back on it, aged by AgeRounds.
	LastKnown    float64
	HasLastKnown bool
}

// Validate checks the report's internal invariants: Covered and Missing
// are ascending and disjoint, the freshness flags are mutually consistent,
// and the staleness fields are sane. Executors must only ever produce
// reports that pass; tests assert it on every report they see.
func (r *DeliveryReport) Validate() error {
	for i := 1; i < len(r.Covered); i++ {
		if r.Covered[i-1] >= r.Covered[i] {
			t := "unsorted"
			if r.Covered[i-1] == r.Covered[i] {
				t = "duplicate"
			}
			return fmt.Errorf("sim: report for %d: %s Covered at %d", r.Dest, t, i)
		}
	}
	for i := 1; i < len(r.Missing); i++ {
		if r.Missing[i-1] >= r.Missing[i] {
			t := "unsorted"
			if r.Missing[i-1] == r.Missing[i] {
				t = "duplicate"
			}
			return fmt.Errorf("sim: report for %d: %s Missing at %d", r.Dest, t, i)
		}
	}
	miss := make(map[graph.NodeID]bool, len(r.Missing))
	for _, s := range r.Missing {
		miss[s] = true
	}
	for _, s := range r.Covered {
		if miss[s] {
			return fmt.Errorf("sim: report for %d: source %d both covered and missing", r.Dest, s)
		}
	}
	switch {
	case r.Fresh && r.Starved:
		return fmt.Errorf("sim: report for %d both fresh and starved", r.Dest)
	case r.Fresh && len(r.Missing) > 0:
		return fmt.Errorf("sim: fresh report for %d misses %d sources", r.Dest, len(r.Missing))
	case r.Starved && len(r.Covered) > 0:
		return fmt.Errorf("sim: starved report for %d covers %d sources", r.Dest, len(r.Covered))
	case r.DestDead && !r.Starved:
		return fmt.Errorf("sim: dead destination %d not starved", r.Dest)
	case r.DeadlineHit && r.Fresh:
		return fmt.Errorf("sim: report for %d both deadline-hit and fresh", r.Dest)
	case r.AgeRounds < 0:
		return fmt.Errorf("sim: report for %d has negative staleness age %d", r.Dest, r.AgeRounds)
	case r.Fresh && r.AgeRounds != 0:
		return fmt.Errorf("sim: fresh report for %d aged %d rounds", r.Dest, r.AgeRounds)
	case r.ClosedAtMS < 0:
		return fmt.Errorf("sim: report for %d closed at negative time %v", r.Dest, r.ClosedAtMS)
	}
	return nil
}

// carriedRaw and carriedRec are a message's payload snapshot: the raw
// values and partial records actually available at the sender when the
// message (first) transmits. Both lossy executors share them; slot is the
// compiled slot the payload lands in at the receiver, and cov the covered
// sources as a dense bitset over the compiled source order.
type carriedRaw struct {
	slot int32
	val  float64
}

type carriedRec struct {
	slot int32
	rec  agg.Record
	cov  []uint64
}

// EdgeOutcome is the observable fate of one planned message: how many
// times its sender transmitted, whether it ultimately arrived, and the
// payload it carried. Attempts == 0 means the sender never transmitted at
// all — under the keep-alive convention only a dead sender is silent, so
// silence implicates the tail while exhausted retries implicate the head.
type EdgeOutcome struct {
	Edge      routing.Edge
	Attempts  int
	Delivered bool
	BodyBytes int
}

// LossyResult reports one round executed under a fault schedule.
type LossyResult struct {
	// Values holds the computed aggregate of every destination that
	// received at least one source (exact only where Reports[d].Fresh).
	Values map[graph.NodeID]float64
	// Reports holds the per-destination delivery report.
	Reports map[graph.NodeID]*DeliveryReport
	// Outcomes lists every planned message's fate, in transmission order.
	Outcomes []EdgeOutcome
	// EnergyJ is the round's total radio energy, including every failed
	// retransmission.
	EnergyJ float64
	// PerNodeJ is each node's share (TX at senders per attempt, RX at the
	// receiver of the successful attempt). Treat as read-only.
	PerNodeJ map[graph.NodeID]float64
	// Messages is the number of planned messages; Transmissions counts
	// physical attempts (≥ delivered messages), Retries the extra
	// attempts beyond the first, and Dropped the planned messages that
	// never arrived.
	Messages      int
	Transmissions int
	Retries       int
	Dropped       int
	// EpochDropped counts heard transmissions the receiver discarded
	// because the frame's plan epoch mismatched its installed table (each
	// also leaves its message in Dropped if no attempt ever passes).
	EpochDropped int
	// Collisions counts transmission attempts destroyed by slot
	// contention (collision model only): the wreck cost the sender TX and
	// a live receiver RX, but nothing was merged or acknowledged.
	Collisions int
}

// RunLossy executes one round in which messages actually drop: each
// planned message is transmitted under stop-and-wait ARQ with at most
// maxRetries retransmissions, every attempt is charged to the sender, and
// only delivered payloads propagate. A node with nothing to forward still
// sends its planned message empty (a header-only keep-alive), so the only
// silent senders are dead ones — the property failure detectors rely on.
// Partial aggregates cover whatever sources arrived; the per-destination
// reports say which values are exact, partial, or missing.
//
// With a nil or fault-free schedule the round is byte-identical to Run:
// same values, same total and per-node energy.
//
// With a battery ledger attached (Options.Battery) every attempt debits
// the sender's TX and every heard frame the receiver's RX. A node that
// cannot afford a debit browns out mid-round: a browned-out sender
// abandons its remaining retries (silence — the same signature as a
// crash, which is what failure detectors key on), and a browned-out
// receiver stops hearing. Nodes already depleted at round start are
// gated exactly like dead ones.
func (e *Engine) RunLossy(round int, readings map[graph.NodeID]float64, faults Faults, maxRetries int) (*LossyResult, error) {
	if maxRetries < 0 {
		return nil, fmt.Errorf("sim: negative retry budget %d", maxRetries)
	}
	if faults == nil {
		faults = noFaults{}
	}
	bat := e.battery
	down := func(n graph.NodeID) bool {
		return faults.NodeDead(round, n) || (bat != nil && bat.Depleted(n))
	}
	c := e.prog
	st := e.getLossyState()
	defer e.putLossyState(st)
	e.fillEdgeFence(st, faults)
	cp, err := e.collisionPlanFor(round, faults, maxRetries, st.edgeOK)
	if err != nil {
		return nil, err
	}
	adv := e.adversaryFor(faults)
	for i, slot := range c.srcSlot {
		if !down(c.srcIDs[i]) {
			v := readings[c.srcIDs[i]]
			if adv != nil {
				v = adv.CorruptReading(round, c.srcIDs[i], v)
			}
			st.raw[slot] = v
			st.rawSet[slot] = true
		}
	}

	res := &LossyResult{
		Values:   make(map[graph.NodeID]float64, len(c.finals)),
		Reports:  make(map[graph.NodeID]*DeliveryReport, len(c.finals)),
		PerNodeJ: make(map[graph.NodeID]float64),
		Messages: len(e.messages),
	}

	for mi, msg := range e.messages {
		edge := e.units[msg[0]].Edge
		out := EdgeOutcome{Edge: edge}
		if down(edge.From) {
			// Dead or depleted sender: silence, no energy anywhere.
			res.Dropped++
			res.Outcomes = append(res.Outcomes, out)
			continue
		}

		// Gather the units whose content is available at the sender.
		raws := st.raws[:0]
		recs := st.recs[:0]
		body := 0
		for _, ui := range msg {
			op := &c.ops[ui]
			if op.kind == plan.UnitRaw {
				if st.rawSet[op.from] {
					raws = append(raws, carriedRaw{slot: op.to, val: st.raw[op.from]})
					body += int(c.unitBytes[ui])
				}
				continue
			}
			tmp := st.tmp[:op.fnLen]
			if assembleLossyInto(op.fn, op.ip, op.inputs, st, c, tmp, st.covTmp) {
				recs = append(recs, carriedRec{
					slot: op.out,
					rec:  append(agg.Record(nil), tmp...),
					cov:  append([]uint64(nil), st.covTmp...),
				})
				body += int(c.unitBytes[ui])
			}
		}
		st.raws, st.recs = raws, recs
		out.BodyBytes = body

		// Stop-and-wait: transmit until delivered or the budget runs out.
		// A lost attempt costs the sender TX; the receiver pays RX only
		// for the attempts it actually hears. An epoch-fenced edge never
		// delivers: the receiver hears the frame, pays RX, and discards it
		// without acknowledging, so the sender burns its whole budget.
		// With a ledger, each attempt debits the sender up front (a sender
		// that cannot pay falls silent mid-window) and each heard frame
		// debits the receiver (a receiver that cannot pay goes deaf).
		txJ := e.Radio.TxJoules(body)
		rxJ := e.Radio.RxJoules(body)
		recvDead := down(edge.To)
		eid := c.msgEdge[mi]
		fenced := !st.edgeOK[eid]
		heard := 0
		wrecked := 0
		if cp == nil {
			for try := 0; try <= maxRetries; try++ {
				if bat != nil && !bat.Spend(round, edge.From, txJ) {
					break // sender browned out mid-ARQ: remaining retries abandoned
				}
				out.Attempts++
				seq := int(st.attempt[eid])
				st.attempt[eid]++
				if !recvDead && faults.Deliver(round, edge, seq) {
					if bat != nil && !bat.Spend(round, edge.To, rxJ) {
						recvDead = true // receiver browned out: frame unheard
						continue
					}
					if fenced {
						heard++
						continue
					}
					out.Delivered = true
					break
				}
			}
		} else {
			// Replay the collision oracle's resolved attempts one-for-one.
			// The oracle already drew channel loss and gated round-start
			// liveness; the executor re-applies the battery gates, which
			// the slot model cannot see.
			for try := 0; try < len(cp.tries[mi]); try++ {
				if bat != nil && !bat.Spend(round, edge.From, txJ) {
					break
				}
				out.Attempts++
				switch cp.tries[mi][try] {
				case coCollided:
					res.Collisions++
					if recvDead {
						continue // wreck unheard: TX wasted, nothing more
					}
					if bat != nil && !bat.Spend(round, edge.To, rxJ) {
						recvDead = true
						continue
					}
					wrecked++ // heard, paid for, destroyed by the checksum
				case coDelivered:
					if recvDead {
						continue
					}
					if bat != nil && !bat.Spend(round, edge.To, rxJ) {
						recvDead = true
						continue
					}
					if fenced {
						heard++
						continue
					}
					out.Delivered = true
				}
			}
		}
		if out.Delivered && out.Attempts == 1 {
			res.EnergyJ += e.Radio.UnicastJoules(body)
		} else {
			res.EnergyJ += float64(out.Attempts) * txJ
			rx := wrecked
			if out.Delivered {
				rx++
			} else {
				rx += heard
			}
			res.EnergyJ += float64(rx) * rxJ
		}
		res.PerNodeJ[edge.From] += float64(out.Attempts) * txJ
		if rx := wrecked + heard + b2i(out.Delivered); rx > 0 {
			res.PerNodeJ[edge.To] += float64(rx) * rxJ
		}
		res.EpochDropped += heard
		res.Transmissions += out.Attempts
		res.Retries += out.Attempts - 1

		if out.Delivered {
			for _, cr := range raws {
				st.raw[cr.slot] = cr.val
				st.rawSet[cr.slot] = true
			}
			for _, cr := range recs {
				dst := st.arena[c.recOff[cr.slot] : c.recOff[cr.slot]+c.recLen[cr.slot]]
				if st.recSet[cr.slot] {
					mergeRecInto(c.recFn[cr.slot], c.recIP[cr.slot], dst, cr.rec)
				} else {
					copy(dst, cr.rec)
					st.recSet[cr.slot] = true
				}
				covOr(st.recCov(c, cr.slot), cr.cov)
			}
		} else {
			res.Dropped++
		}
		res.Outcomes = append(res.Outcomes, out)
	}

	// Final per-destination merge and delivery report. finals follow
	// Dests() order, and each function's source list is ascending, so the
	// covered/missing splits come out sorted without a per-round sort.
	for i := range c.finals {
		fo := &c.finals[i]
		d := fo.dest
		rep := &DeliveryReport{Dest: d}
		res.Reports[d] = rep
		if down(d) {
			rep.DestDead = true
			rep.Starved = true
			rep.Missing = append([]graph.NodeID(nil), fo.sources...)
			continue
		}
		tmp := st.tmp[:fo.fnLen]
		got := assembleLossyInto(fo.fn, fo.ip, fo.inputs, st, c, tmp, st.covTmp)
		for j, s := range fo.sources {
			if covHasBit(st.covTmp, fo.srcBits[j]) {
				rep.Covered = append(rep.Covered, s)
			} else {
				rep.Missing = append(rep.Missing, s)
			}
		}
		if !got {
			rep.Starved = true
			continue
		}
		rep.Fresh = len(rep.Missing) == 0
		res.Values[d] = fo.fn.Eval(tmp)
	}
	return res, nil
}
