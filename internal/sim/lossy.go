package sim

import (
	"fmt"
	"sort"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/routing"
)

// Faults is the fault schedule the lossy executor queries while a round
// runs (chaos.Injector implements it). Both methods must be deterministic
// in their arguments so repeated rounds are reproducible.
type Faults interface {
	// NodeDead reports whether n has permanently crashed by the given
	// round. A dead node neither transmits, receives, nor samples.
	NodeDead(round int, n graph.NodeID) bool
	// Deliver reports whether the attempt-th transmission of the round on
	// e is heard by e.To (liveness of the endpoints is gated separately).
	Deliver(round int, e routing.Edge, attempt int) bool
}

// noFaults is the identity schedule: every transmission arrives.
type noFaults struct{}

func (noFaults) NodeDead(int, graph.NodeID) bool     { return false }
func (noFaults) Deliver(int, routing.Edge, int) bool { return true }

// DeliveryReport describes how well one destination was served by a lossy
// round: exactly (fresh), over partial source coverage (stale), or not at
// all (starved).
type DeliveryReport struct {
	// Dest is the destination node.
	Dest graph.NodeID
	// Fresh is true when every source of f_d reached the destination and
	// the reported value is exact.
	Fresh bool
	// Covered lists the sources whose readings made it into the value,
	// ascending. Missing lists the rest.
	Covered []graph.NodeID
	Missing []graph.NodeID
	// Starved is true when no source reached the destination at all (no
	// value was produced this round).
	Starved bool
	// DestDead is true when the destination itself has crashed; such a
	// destination is also reported as starved.
	DestDead bool

	// The remaining fields are filled by the asynchronous executor (and,
	// for AgeRounds, by sessions that keep a last-known-value cache); the
	// synchronous executors leave them zero.

	// ClosedAtMS is the simulated time at which the destination's round
	// closed: when its last input resolved, or at the deadline.
	ClosedAtMS float64
	// DeadlineHit is true when the round's deadline forced the close while
	// inputs were still unresolved — the graceful-degradation path. A
	// deadline-hit destination is never fresh.
	DeadlineHit bool
	// AgeRounds is how many rounds have passed since this destination was
	// last served fresh (0 when fresh this round).
	AgeRounds int
	// LastKnown is the most recent exact value the last-known-value cache
	// holds for this destination; HasLastKnown guards it. A starved or
	// stale destination's consumer can fall back on it, aged by AgeRounds.
	LastKnown    float64
	HasLastKnown bool
}

// Validate checks the report's internal invariants: Covered and Missing
// are ascending and disjoint, the freshness flags are mutually consistent,
// and the staleness fields are sane. Executors must only ever produce
// reports that pass; tests assert it on every report they see.
func (r *DeliveryReport) Validate() error {
	for i := 1; i < len(r.Covered); i++ {
		if r.Covered[i-1] >= r.Covered[i] {
			t := "unsorted"
			if r.Covered[i-1] == r.Covered[i] {
				t = "duplicate"
			}
			return fmt.Errorf("sim: report for %d: %s Covered at %d", r.Dest, t, i)
		}
	}
	for i := 1; i < len(r.Missing); i++ {
		if r.Missing[i-1] >= r.Missing[i] {
			t := "unsorted"
			if r.Missing[i-1] == r.Missing[i] {
				t = "duplicate"
			}
			return fmt.Errorf("sim: report for %d: %s Missing at %d", r.Dest, t, i)
		}
	}
	miss := make(map[graph.NodeID]bool, len(r.Missing))
	for _, s := range r.Missing {
		miss[s] = true
	}
	for _, s := range r.Covered {
		if miss[s] {
			return fmt.Errorf("sim: report for %d: source %d both covered and missing", r.Dest, s)
		}
	}
	switch {
	case r.Fresh && r.Starved:
		return fmt.Errorf("sim: report for %d both fresh and starved", r.Dest)
	case r.Fresh && len(r.Missing) > 0:
		return fmt.Errorf("sim: fresh report for %d misses %d sources", r.Dest, len(r.Missing))
	case r.Starved && len(r.Covered) > 0:
		return fmt.Errorf("sim: starved report for %d covers %d sources", r.Dest, len(r.Covered))
	case r.DestDead && !r.Starved:
		return fmt.Errorf("sim: dead destination %d not starved", r.Dest)
	case r.DeadlineHit && r.Fresh:
		return fmt.Errorf("sim: report for %d both deadline-hit and fresh", r.Dest)
	case r.AgeRounds < 0:
		return fmt.Errorf("sim: report for %d has negative staleness age %d", r.Dest, r.AgeRounds)
	case r.Fresh && r.AgeRounds != 0:
		return fmt.Errorf("sim: fresh report for %d aged %d rounds", r.Dest, r.AgeRounds)
	case r.ClosedAtMS < 0:
		return fmt.Errorf("sim: report for %d closed at negative time %v", r.Dest, r.ClosedAtMS)
	}
	return nil
}

// carriedRaw and carriedRec are a message's payload snapshot: the raw
// values and partial records actually available at the sender when the
// message (first) transmits. Both lossy executors share them.
type carriedRaw struct {
	src graph.NodeID
	val float64
}

type carriedRec struct {
	dest graph.NodeID
	rec  agg.Record
	cov  map[graph.NodeID]bool
}

// EdgeOutcome is the observable fate of one planned message: how many
// times its sender transmitted, whether it ultimately arrived, and the
// payload it carried. Attempts == 0 means the sender never transmitted at
// all — under the keep-alive convention only a dead sender is silent, so
// silence implicates the tail while exhausted retries implicate the head.
type EdgeOutcome struct {
	Edge      routing.Edge
	Attempts  int
	Delivered bool
	BodyBytes int
}

// LossyResult reports one round executed under a fault schedule.
type LossyResult struct {
	// Values holds the computed aggregate of every destination that
	// received at least one source (exact only where Reports[d].Fresh).
	Values map[graph.NodeID]float64
	// Reports holds the per-destination delivery report.
	Reports map[graph.NodeID]*DeliveryReport
	// Outcomes lists every planned message's fate, in transmission order.
	Outcomes []EdgeOutcome
	// EnergyJ is the round's total radio energy, including every failed
	// retransmission.
	EnergyJ float64
	// PerNodeJ is each node's share (TX at senders per attempt, RX at the
	// receiver of the successful attempt). Treat as read-only.
	PerNodeJ map[graph.NodeID]float64
	// Messages is the number of planned messages; Transmissions counts
	// physical attempts (≥ delivered messages), Retries the extra
	// attempts beyond the first, and Dropped the planned messages that
	// never arrived.
	Messages      int
	Transmissions int
	Retries       int
	Dropped       int
}

// RunLossy executes one round in which messages actually drop: each
// planned message is transmitted under stop-and-wait ARQ with at most
// maxRetries retransmissions, every attempt is charged to the sender, and
// only delivered payloads propagate. A node with nothing to forward still
// sends its planned message empty (a header-only keep-alive), so the only
// silent senders are dead ones — the property failure detectors rely on.
// Partial aggregates cover whatever sources arrived; the per-destination
// reports say which values are exact, partial, or missing.
//
// With a nil or fault-free schedule the round is byte-identical to Run:
// same values, same total and per-node energy.
func (e *Engine) RunLossy(round int, readings map[graph.NodeID]float64, faults Faults, maxRetries int) (*LossyResult, error) {
	if maxRetries < 0 {
		return nil, fmt.Errorf("sim: negative retry budget %d", maxRetries)
	}
	if faults == nil {
		faults = noFaults{}
	}
	inst := e.Plan.Inst
	rawVal := make(map[nodeSource]float64)
	recVal := make(map[nodeDest]agg.Record)
	cov := make(map[nodeDest]map[graph.NodeID]bool)
	for _, s := range inst.Sources() {
		if !faults.NodeDead(round, s) {
			rawVal[nodeSource{node: s, source: s}] = readings[s]
		}
	}

	res := &LossyResult{
		Values:   make(map[graph.NodeID]float64, len(inst.SpecByDest)),
		Reports:  make(map[graph.NodeID]*DeliveryReport, len(inst.SpecByDest)),
		PerNodeJ: make(map[graph.NodeID]float64),
		Messages: len(e.messages),
	}
	attemptSeq := make(map[routing.Edge]int)

	for _, msg := range e.messages {
		edge := e.units[msg[0]].Edge
		out := EdgeOutcome{Edge: edge}
		if faults.NodeDead(round, edge.From) {
			// Dead sender: silence, no energy anywhere.
			res.Dropped++
			res.Outcomes = append(res.Outcomes, out)
			continue
		}

		// Gather the units whose content is available at the sender.
		var raws []carriedRaw
		var recs []carriedRec
		body := 0
		for _, ui := range msg {
			u := e.units[ui]
			switch u.Kind {
			case plan.UnitRaw:
				if v, ok := rawVal[nodeSource{node: edge.From, source: u.Node}]; ok {
					raws = append(raws, carriedRaw{src: u.Node, val: v})
					body += e.Plan.Bytes(u)
				}
			default:
				rec, cv, err := e.assembleLossy(edge.From, u.Node, edge, rawVal, recVal, cov)
				if err != nil {
					return nil, err
				}
				if rec != nil {
					recs = append(recs, carriedRec{dest: u.Node, rec: rec, cov: cv})
					body += e.Plan.Bytes(u)
				}
			}
		}
		out.BodyBytes = body

		// Stop-and-wait: transmit until delivered or the budget runs out.
		// A lost attempt costs the sender TX; the receiver pays RX only
		// for the attempt it actually hears.
		recvDead := faults.NodeDead(round, edge.To)
		for try := 0; try <= maxRetries; try++ {
			out.Attempts++
			seq := attemptSeq[edge]
			attemptSeq[edge] = seq + 1
			if !recvDead && faults.Deliver(round, edge, seq) {
				out.Delivered = true
				break
			}
		}
		txJ := e.Radio.TxJoules(body)
		if out.Delivered && out.Attempts == 1 {
			res.EnergyJ += e.Radio.UnicastJoules(body)
		} else {
			res.EnergyJ += float64(out.Attempts) * txJ
			if out.Delivered {
				res.EnergyJ += e.Radio.RxJoules(body)
			}
		}
		res.PerNodeJ[edge.From] += float64(out.Attempts) * txJ
		if out.Delivered {
			res.PerNodeJ[edge.To] += e.Radio.RxJoules(body)
		}
		res.Transmissions += out.Attempts
		res.Retries += out.Attempts - 1

		if out.Delivered {
			for _, cr := range raws {
				rawVal[nodeSource{node: edge.To, source: cr.src}] = cr.val
			}
			for _, cr := range recs {
				key := nodeDest{node: edge.To, dest: cr.dest}
				if prev, ok := recVal[key]; ok {
					recVal[key] = inst.SpecByDest[cr.dest].Func.Merge(prev, cr.rec)
				} else {
					recVal[key] = cr.rec
				}
				cset := cov[key]
				if cset == nil {
					cset = make(map[graph.NodeID]bool)
					cov[key] = cset
				}
				for s := range cr.cov {
					cset[s] = true
				}
			}
		} else {
			res.Dropped++
		}
		res.Outcomes = append(res.Outcomes, out)
	}

	// Final per-destination merge and delivery report.
	for _, d := range inst.Dests() {
		rep := &DeliveryReport{Dest: d}
		res.Reports[d] = rep
		f := inst.SpecByDest[d].Func
		all := f.Sources()
		if faults.NodeDead(round, d) {
			rep.DestDead = true
			rep.Starved = true
			rep.Missing = append([]graph.NodeID(nil), all...)
			continue
		}
		rec, cv, err := e.assembleLossy(d, d, routing.Edge{}, rawVal, recVal, cov)
		if err != nil {
			return nil, err
		}
		for _, s := range all {
			if cv[s] {
				rep.Covered = append(rep.Covered, s)
			} else {
				rep.Missing = append(rep.Missing, s)
			}
		}
		sort.Slice(rep.Covered, func(i, j int) bool { return rep.Covered[i] < rep.Covered[j] })
		sort.Slice(rep.Missing, func(i, j int) bool { return rep.Missing[i] < rep.Missing[j] })
		if rec == nil {
			rep.Starved = true
			continue
		}
		rep.Fresh = len(rep.Missing) == 0
		res.Values[d] = f.Eval(rec)
	}
	return res, nil
}

// assembleLossy is assembleRecord under partial delivery: contributions
// that never arrived are skipped instead of failing, and the covered
// source set is tracked alongside the record. When every input is present
// it performs the identical merge sequence to assembleRecord, so
// fault-free values match Run bit for bit. rec is nil when nothing at all
// is available.
func (e *Engine) assembleLossy(n, d graph.NodeID, out routing.Edge, rawVal map[nodeSource]float64, recVal map[nodeDest]agg.Record, cov map[nodeDest]map[graph.NodeID]bool) (agg.Record, map[graph.NodeID]bool, error) {
	inst := e.Plan.Inst
	f := inst.SpecByDest[d].Func
	final := out == routing.Edge{}

	var pairs []plan.Pair
	if final {
		for _, s := range f.Sources() {
			pairs = append(pairs, plan.Pair{Source: s, Dest: d})
		}
	} else {
		for _, pr := range inst.EdgePairs[out] {
			if pr.Dest == d {
				pairs = append(pairs, pr)
			}
		}
	}

	var rec agg.Record
	cv := make(map[graph.NodeID]bool)
	mergeIn := func(r agg.Record) {
		if rec == nil {
			rec = r.Clone()
		} else {
			rec = f.Merge(rec, r)
		}
	}
	usedUpstream := false
	for _, pr := range pairs {
		path := inst.Paths[pr]
		var pos int
		if final {
			pos = len(path) - 1
		} else {
			pos = inst.PairEdgeIndex(pr, out)
			if pos < 0 {
				return nil, nil, fmt.Errorf("sim: pair %d→%d does not cross %v", pr.Source, pr.Dest, out)
			}
		}
		if pos == 0 {
			if v, ok := rawVal[nodeSource{node: n, source: pr.Source}]; ok {
				mergeIn(f.PreAgg(pr.Source, v))
				cv[pr.Source] = true
			}
			continue
		}
		in := routing.Edge{From: path[pos-1], To: path[pos]}
		if e.Plan.Sol[in].Agg[d] {
			if !usedUpstream {
				usedUpstream = true
				key := nodeDest{node: n, dest: d}
				if r, ok := recVal[key]; ok {
					mergeIn(r)
					for s := range cov[key] {
						cv[s] = true
					}
				}
			}
			continue
		}
		if v, ok := rawVal[nodeSource{node: n, source: pr.Source}]; ok {
			mergeIn(f.PreAgg(pr.Source, v))
			cv[pr.Source] = true
		}
	}
	return rec, cv, nil
}
