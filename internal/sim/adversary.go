package sim

import "m2m/internal/graph"

// Adversary is the Byzantine-corruption schedule the executors consult
// at the pre-aggregation boundary (chaos.Injector implements it): the
// moment a source's raw reading enters the round, the adversary gets to
// replace it. Corruption happens exactly once, at the source's own fill
// slot, so honest relays forward the poisoned value faithfully — the
// signature of a compromised mote rather than a noisy link.
//
// CorruptReading must be a pure function of its arguments (an honest
// node returns v unchanged), so rounds stay reproducible and the
// compiled, lossy, and asynchronous executors corrupt identically.
//
// The lossy and asynchronous executors discover the adversary by
// asserting it from their fault schedule, falling back to the engine's
// Options.Adversary; the fault-free executors use Options.Adversary
// with an engine-held round counter.
type Adversary interface {
	CorruptReading(round int, n graph.NodeID, v float64) float64
}

// nextAdvRound claims the next fault-free round index for the adversary
// schedule. Without an adversary the counter never moves, keeping the
// hot path untouched.
func (e *Engine) nextAdvRound() int {
	if e.adversary == nil {
		return 0
	}
	return int(e.advRound.Add(1)) - 1
}

// reserveAdvRounds claims a contiguous block of n round indices for a
// concurrent batch, so batch[i] deterministically executes as round
// base+i regardless of worker interleaving.
func (e *Engine) reserveAdvRounds(n int) int {
	if e.adversary == nil {
		return 0
	}
	return int(e.advRound.Add(int64(n))) - n
}

// adversaryFor resolves the adversary a faulty-path round should apply:
// the fault schedule's own, when it carries one, else the engine's.
func (e *Engine) adversaryFor(faults Faults) Adversary {
	if adv, ok := faults.(Adversary); ok {
		return adv
	}
	return e.adversary
}
