package sim

import (
	"testing"

	"m2m/internal/graph"
)

func TestLifetimeRounds(t *testing.T) {
	perRound := map[graph.NodeID]float64{0: 0.5, 1: 2.0, 2: 1.0}
	rounds, hottest, err := LifetimeRounds(perRound, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 50 {
		t.Errorf("rounds = %d, want 50", rounds)
	}
	if hottest != 1 {
		t.Errorf("hottest = %d, want 1", hottest)
	}
}

func TestLifetimeRoundsErrors(t *testing.T) {
	if _, _, err := LifetimeRounds(map[graph.NodeID]float64{0: 1}, 0); err == nil {
		t.Error("zero battery accepted")
	}
	if _, _, err := LifetimeRounds(map[graph.NodeID]float64{0: -1}, 10); err == nil {
		t.Error("negative energy accepted")
	}
	if _, _, err := LifetimeRounds(map[graph.NodeID]float64{0: 0}, 10); err == nil {
		t.Error("unbounded lifetime accepted")
	}
	if _, _, err := LifetimeRounds(nil, 10); err == nil {
		t.Error("empty map accepted")
	}
}

func TestLifetimeDeterministicTiebreak(t *testing.T) {
	perRound := map[graph.NodeID]float64{5: 2.0, 3: 2.0, 9: 2.0}
	_, hottest, err := LifetimeRounds(perRound, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hottest != 3 {
		t.Errorf("hottest = %d, want smallest-ID 3", hottest)
	}
}
