package sim

import (
	"math/rand"
	"testing"

	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
)

func adaptiveFixture(t *testing.T) (*plan.Instance, *plan.Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	inst := linearInstance(t, rng, 45, 10, 10)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	return inst, p
}

func runDeltas(rng *rand.Rand, n int, prob float64) map[graph.NodeID]float64 {
	deltas := make(map[graph.NodeID]float64)
	for i := 0; i < n; i++ {
		if rng.Float64() < prob {
			deltas[graph.NodeID(i)] = rng.NormFloat64()
		}
	}
	return deltas
}

func TestAdaptiveConvergesToVolatility(t *testing.T) {
	inst, p := adaptiveFixture(t)
	a, err := NewAdaptiveSuppressor(p, radio.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.CurrentPolicy() != PolicyAggressive {
		t.Errorf("initial policy = %v, want aggressive (quiet prior)", a.CurrentPolicy())
	}
	rng := rand.New(rand.NewSource(1))
	// Quiet phase: stays aggressive.
	for round := 0; round < 15; round++ {
		if _, _, err := a.Round(runDeltas(rng, inst.Net.Len(), 0.03)); err != nil {
			t.Fatal(err)
		}
	}
	if a.CurrentPolicy() != PolicyAggressive {
		t.Errorf("quiet phase policy = %v (rate %v)", a.CurrentPolicy(), a.Rate())
	}
	// Storm: everything changes — adaptive must back off to no override.
	for round := 0; round < 15; round++ {
		if _, _, err := a.Round(runDeltas(rng, inst.Net.Len(), 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if a.CurrentPolicy() != PolicyNone {
		t.Errorf("storm phase policy = %v (rate %v)", a.CurrentPolicy(), a.Rate())
	}
	// Calm returns: the EWMA decays back toward aggressive.
	for round := 0; round < 25; round++ {
		if _, _, err := a.Round(runDeltas(rng, inst.Net.Len(), 0.02)); err != nil {
			t.Fatal(err)
		}
	}
	if a.CurrentPolicy() != PolicyAggressive {
		t.Errorf("recovered policy = %v (rate %v)", a.CurrentPolicy(), a.Rate())
	}
}

func TestAdaptiveTracksBestFixedPolicy(t *testing.T) {
	// Across a volatility sweep, adaptive must stay close to the best
	// fixed policy at each level (within a small slack), never collapsing
	// to the worst.
	inst, p := adaptiveFixture(t)
	model := radio.DefaultModel()
	for _, prob := range []float64{0.03, 0.3} {
		fixed := make(map[Policy]float64)
		for _, pol := range []Policy{PolicyNone, PolicyConservative, PolicyMedium, PolicyAggressive} {
			s, err := NewSuppressor(p, model, pol)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			total := 0.0
			for round := 0; round < 40; round++ {
				r, err := s.Round(runDeltas(rng, inst.Net.Len(), prob))
				if err != nil {
					t.Fatal(err)
				}
				total += r.EnergyJ
			}
			fixed[pol] = total
		}
		a, err := NewAdaptiveSuppressor(p, model)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		adaptive := 0.0
		for round := 0; round < 40; round++ {
			r, _, err := a.Round(runDeltas(rng, inst.Net.Len(), prob))
			if err != nil {
				t.Fatal(err)
			}
			adaptive += r.EnergyJ
		}
		best, worst := fixed[PolicyNone], fixed[PolicyNone]
		for _, e := range fixed {
			if e < best {
				best = e
			}
			if e > worst {
				worst = e
			}
		}
		if adaptive > best*1.05 {
			t.Errorf("p=%v: adaptive %v J, best fixed %v J", prob, adaptive, best)
		}
	}
}
