package sim

import (
	"sort"

	"m2m/internal/graph"
	"m2m/internal/plan"
)

// accountBroadcastEnergy prices each sending node's traffic as a single
// local broadcast heard by exactly its intended recipients (selective
// listening). Raw units destined for several out-edges are carried once;
// record units are per-destination and already unique to one out-edge.
// Every intended neighbor receives the whole broadcast body — that is the
// price of sharing the medium — so broadcast wins exactly when a node
// duplicates enough raw bytes across out-edges to cover its neighbors'
// extra listening.
func (e *Engine) accountBroadcastEnergy() {
	e.energyJ = 0
	e.bodyBytes = 0
	e.perNodeJ = make(map[graph.NodeID]float64)

	type nodeTraffic struct {
		rawBytes  map[graph.NodeID]int // deduplicated raw units by source
		recBytes  int
		listeners map[graph.NodeID]bool
	}
	byNode := make(map[graph.NodeID]*nodeTraffic)
	var senders []graph.NodeID
	for _, u := range e.units {
		n := u.Edge.From
		t, ok := byNode[n]
		if !ok {
			t = &nodeTraffic{
				rawBytes:  make(map[graph.NodeID]int),
				listeners: make(map[graph.NodeID]bool),
			}
			byNode[n] = t
			senders = append(senders, n)
		}
		if u.Kind == plan.UnitRaw {
			t.rawBytes[u.Node] = e.Plan.Bytes(u)
		} else {
			t.recBytes += e.Plan.Bytes(u)
		}
		t.listeners[u.Edge.To] = true
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })

	// One broadcast message per sender.
	e.messages = e.messages[:0]
	for _, n := range senders {
		t := byNode[n]
		body := t.recBytes
		for _, b := range t.rawBytes {
			body += b
		}
		e.bodyBytes += body
		e.energyJ += e.Radio.BroadcastJoules(body, len(t.listeners))
		e.perNodeJ[n] += e.Radio.TxJoules(body)
		for l := range t.listeners {
			e.perNodeJ[l] += e.Radio.RxJoules(body)
		}
		// Record the broadcast as one message for reporting purposes; the
		// unit indices are not needed downstream of energy accounting.
		e.messages = append(e.messages, nil)
	}
}
