package sim

import (
	"fmt"
	"sort"

	"m2m/internal/graph"
)

// MessageInfo describes one physical message of the round: its endpoints
// and the indices of messages that must be received before it is sent.
// It is the input to transmission scheduling (package schedule).
type MessageInfo struct {
	From, To graph.NodeID
	Deps     []int
}

// MessageGraph exports the engine's message layout with message-level
// wait-for dependencies. Only available in unicast modes (broadcast
// accounting does not retain per-message unit assignments).
func (e *Engine) MessageGraph() ([]MessageInfo, error) {
	msgOf := make([]int, len(e.units))
	for i := range msgOf {
		msgOf[i] = -1
	}
	for mi, msg := range e.messages {
		if len(msg) == 0 {
			return nil, fmt.Errorf("sim: message graph unavailable in broadcast mode")
		}
		for _, ui := range msg {
			msgOf[ui] = mi
		}
	}
	out := make([]MessageInfo, len(e.messages))
	for mi, msg := range e.messages {
		edge := e.units[msg[0]].Edge
		deps := make(map[int]bool)
		for _, ui := range msg {
			for _, dep := range e.deps[ui] {
				if d := msgOf[dep]; d != mi {
					deps[d] = true
				}
			}
		}
		info := MessageInfo{From: edge.From, To: edge.To}
		for d := range deps {
			info.Deps = append(info.Deps, d)
		}
		sort.Ints(info.Deps)
		out[mi] = info
	}
	return out, nil
}
