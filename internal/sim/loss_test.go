package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

func TestLinkLossInflatesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	inst := buildInstance(t, rng, 35, 5, 5, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	lossless, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewEngine(p, radio.DefaultModel(), Options{
		MergeMessages: true,
		LinkLoss:      func(routing.Edge) float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	r0, err := lossless.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := lossy.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 50% loss doubles every transmission: exactly 2× energy.
	if math.Abs(r1.EnergyJ-2*r0.EnergyJ) > 1e-12 {
		t.Errorf("uniform 0.5 loss energy %v, want exactly 2× %v", r1.EnergyJ, r0.EnergyJ)
	}
	// Values unaffected (ARQ eventually delivers).
	for d, v := range r0.Values {
		if r1.Values[d] != v {
			t.Error("loss changed values")
		}
	}
	// Per-node energy still sums to the total.
	sum := 0.0
	for _, v := range r1.PerNodeJ {
		sum += v
	}
	if math.Abs(sum-r1.EnergyJ) > 1e-9 {
		t.Errorf("per-node sum %v != total %v", sum, r1.EnergyJ)
	}
}

func TestLinkLossRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	inst := buildInstance(t, rng, 20, 3, 3, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(p, radio.DefaultModel(), Options{
		LinkLoss: func(routing.Edge) float64 { return 1.0 },
	}); err == nil {
		t.Error("loss = 1 accepted")
	}
	if _, err := NewEngine(p, radio.DefaultModel(), Options{
		Broadcast: true,
		LinkLoss:  func(routing.Edge) float64 { return 0.1 },
	}); err == nil {
		t.Error("Broadcast+LinkLoss accepted")
	}
}

func TestLossForDistanceShape(t *testing.T) {
	r := 50.0
	if got := radio.LossForDistance(10, r, 0.4); got != 0 {
		t.Errorf("short link loss = %v", got)
	}
	if got := radio.LossForDistance(25, r, 0.4); got != 0 {
		t.Errorf("half-range loss = %v", got)
	}
	full := radio.LossForDistance(50, r, 0.4)
	if math.Abs(full-0.4) > 1e-12 {
		t.Errorf("full-range loss = %v, want 0.4", full)
	}
	mid := radio.LossForDistance(37.5, r, 0.4)
	if mid <= 0 || mid >= full {
		t.Errorf("gray-zone loss = %v not between 0 and %v", mid, full)
	}
	if got := radio.LossForDistance(100, r, 0.4); got != 0.4 {
		t.Errorf("beyond-range loss = %v, want clamp to 0.4", got)
	}
	if got := radio.LossForDistance(40, 0, 0.4); got != 0 {
		t.Errorf("degenerate range loss = %v", got)
	}
}

func TestARQFactor(t *testing.T) {
	if f, err := radio.ARQFactor(0); err != nil || f != 1 {
		t.Errorf("ARQ(0) = %v, %v", f, err)
	}
	if f, err := radio.ARQFactor(0.75); err != nil || f != 4 {
		t.Errorf("ARQ(0.75) = %v, %v", f, err)
	}
	if _, err := radio.ARQFactor(1); err == nil {
		t.Error("loss 1 accepted")
	}
	if _, err := radio.ARQFactor(-0.1); err == nil {
		t.Error("negative loss accepted")
	}
}
