package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"m2m/internal/chaos"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

// conservationTol bounds the float drift between the energy an executor
// reports and the debits it books: the two differ only in association
// order (UnicastJoules vs txJ+rxJ), never in terms.
const conservationTol = 1e-12

func TestBatteryLedgerSemantics(t *testing.T) {
	if _, err := NewBattery(0, 1); err == nil {
		t.Error("zero-node battery accepted")
	}
	if _, err := NewBattery(3, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	b, err := NewBattery(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Spend(0, 1, 4) {
		t.Fatal("affordable debit refused")
	}
	if got := b.Residual(1); got != 6 {
		t.Fatalf("residual = %v, want 6", got)
	}
	if !b.Spend(0, 1, 0) || !b.Spend(0, 1, -5) {
		t.Fatal("free debit refused")
	}
	if got := b.Residual(1); got != 6 {
		t.Fatalf("free debits changed residual to %v", got)
	}
	// Brown-out: the unaffordable debit forfeits the remaining charge
	// without booking it as spend, and pins the death round.
	if b.Spend(7, 1, 100) {
		t.Fatal("unaffordable debit accepted")
	}
	if got := b.Residual(1); got != 0 {
		t.Fatalf("forfeited residual = %v, want 0", got)
	}
	if got := b.SpentJ(1); got != 4 {
		t.Fatalf("spent = %v, want only the paid 4 J", got)
	}
	if !b.Depleted(1) || b.DepletedAt(1) != 7 {
		t.Fatalf("depletion not recorded: depleted=%v at %d", b.Depleted(1), b.DepletedAt(1))
	}
	if b.Spend(8, 1, 0.001) {
		t.Fatal("dead node accepted a debit")
	}
	if got := b.FirstDeathRound(); got != 7 {
		t.Fatalf("first death = %d, want 7", got)
	}
	if got := b.DepletedNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("depleted nodes = %v, want [1]", got)
	}
	// MinResidualJ ignores the depleted node.
	b.Spend(8, 2, 3)
	if got := b.MinResidualJ(); got != 7 {
		t.Fatalf("min residual = %v, want 7", got)
	}
	if got := b.TotalSpentJ(); got != 7 {
		t.Fatalf("total spent = %v, want 7", got)
	}
	// SetCapacity resurrects and resizes.
	if err := b.SetCapacity(1, 2); err != nil {
		t.Fatal(err)
	}
	if b.Depleted(1) || b.Residual(1) != 2 || b.SpentJ(1) != 0 {
		t.Fatal("SetCapacity did not reset the node")
	}
	if err := b.SetCapacity(9, 1); err == nil {
		t.Error("out-of-range SetCapacity accepted")
	}
	if err := b.SetCapacity(1, 0); err == nil {
		t.Error("non-positive SetCapacity accepted")
	}
	// DrainPerRound browns out exactly the nodes that cannot pay.
	b2, _ := NewBattery(2, 10)
	b2.DrainPerRound(3, map[graph.NodeID]float64{0: 4, 1: 11})
	if b2.SpentJ(0) != 4 || !b2.Depleted(1) || b2.DepletedAt(1) != 3 || b2.Residual(1) != 0 {
		t.Fatalf("DrainPerRound semantics: spent0=%v dead1=%v at %d res1=%v",
			b2.SpentJ(0), b2.Depleted(1), b2.DepletedAt(1), b2.Residual(1))
	}
}

// TestBatteryConservation drives every executor with an attached ledger
// and checks, per round, that the energy the result reports, the sum of
// its per-node split, and the debits actually booked against the battery
// all agree to within float association error — no executor spends energy
// it does not debit or debits energy it does not report.
func TestBatteryConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	n := inst.Net.Len()
	const rounds = 4

	fresh := func(t *testing.T) (*Engine, *Battery) {
		t.Helper()
		bat, err := NewBattery(n, 1e6) // ample: conservation, not depletion
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Battery: bat})
		if err != nil {
			t.Fatal(err)
		}
		return eng, bat
	}
	check := func(t *testing.T, bat *Battery, prevSpent, energyJ float64, perNode map[graph.NodeID]float64) float64 {
		t.Helper()
		spent := bat.TotalSpentJ()
		if d := math.Abs((spent - prevSpent) - energyJ); d > conservationTol {
			t.Fatalf("debits %.18g != reported energy %.18g (|diff| %g)", spent-prevSpent, energyJ, d)
		}
		var sum float64
		for _, j := range perNode {
			sum += j
		}
		if d := math.Abs(sum - energyJ); d > conservationTol {
			t.Fatalf("per-node split sums to %.18g, energy %.18g (|diff| %g)", sum, energyJ, d)
		}
		return spent
	}

	t.Run("reference", func(t *testing.T) {
		eng, bat := fresh(t)
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := eng.runMapBased(0, readings, nil)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
	t.Run("compiled", func(t *testing.T) {
		eng, bat := fresh(t)
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := eng.Run(readings)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
	t.Run("runinto", func(t *testing.T) {
		eng, bat := fresh(t)
		st := eng.NewRoundState()
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := eng.RunInto(readings, st)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		eng, bat := fresh(t)
		batch := make([]map[graph.NodeID]float64, rounds)
		for i := range batch {
			batch[i] = readings
		}
		results, err := eng.RunConcurrent(context.Background(), batch, 3)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, res := range results {
			total += res.EnergyJ
			var sum float64
			for _, j := range res.PerNodeJ {
				sum += j
			}
			if d := math.Abs(sum - res.EnergyJ); d > conservationTol {
				t.Fatalf("per-node split sums to %.18g, energy %.18g", sum, res.EnergyJ)
			}
		}
		if d := math.Abs(bat.TotalSpentJ() - total); d > conservationTol {
			t.Fatalf("debits %.18g != batch energy %.18g", bat.TotalSpentJ(), total)
		}
	})
	t.Run("lossy-fault-free", func(t *testing.T) {
		eng, bat := fresh(t)
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := eng.RunLossy(r, readings, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
	t.Run("lossy-chaotic", func(t *testing.T) {
		eng, bat := fresh(t)
		inj := chaos.New(23).WithUniformLoss(0.3)
		prev := 0.0
		retried := 0
		for r := 0; r < rounds; r++ {
			res, err := eng.RunLossy(r, readings, inj, 3)
			if err != nil {
				t.Fatal(err)
			}
			retried += res.Retries
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
		if retried == 0 {
			t.Fatal("chaotic run exercised no retries — seed too tame for the test to mean anything")
		}
	})
	t.Run("async-fault-free", func(t *testing.T) {
		eng, bat := fresh(t)
		runner, err := NewAsyncRunner(eng, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := runner.Run(r, readings, nil)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
	t.Run("async-chaotic", func(t *testing.T) {
		eng, bat := fresh(t)
		runner, err := NewAsyncRunner(eng, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(9).WithUniformLoss(0.3).WithJitter(2, 10).WithDuplication(0.25)
		prev := 0.0
		for r := 0; r < rounds; r++ {
			res, err := runner.Run(r, readings, inj)
			if err != nil {
				t.Fatal(err)
			}
			prev = check(t, bat, prev, res.EnergyJ, res.PerNodeJ)
		}
	})
}

// attemptFaults drops the first ARQ attempt on the listed edges and
// delivers everything else.
type attemptFaults struct{ dropFirst map[routing.Edge]bool }

func (attemptFaults) NodeDead(int, graph.NodeID) bool { return false }
func (f attemptFaults) Deliver(_ int, e routing.Edge, attempt int) bool {
	return !(f.dropFirst[e] && attempt == 0)
}

// TestBatteryMidARQDepletion browns a sender out halfway through its
// retry window: the battery affords the first transmission but not the
// retransmission, so the message dies with fewer attempts than the budget
// allows, the remaining charge is forfeited, and the books still balance.
func TestBatteryMidARQDepletion(t *testing.T) {
	inst := lineInstance(t, 2, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 0}
	edge := routing.Edge{From: 0, To: 1}

	// Probe the per-attempt TX cost with an unconstrained ledger.
	probeBat, _ := NewBattery(2, 1e6)
	probe, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Battery: probeBat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.RunLossy(0, readings, nil, 3); err != nil {
		t.Fatal(err)
	}
	txJ := probeBat.SpentJ(0)
	if txJ <= 0 {
		t.Fatal("probe round spent nothing at the sender")
	}

	bat, _ := NewBattery(2, 1e6)
	if err := bat.SetCapacity(0, 1.5*txJ); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Battery: bat})
	if err != nil {
		t.Fatal(err)
	}
	const maxRetries = 3
	res, err := eng.RunLossy(0, readings, attemptFaults{dropFirst: map[routing.Edge]bool{edge: true}}, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("%d outcomes, want 1", len(res.Outcomes))
	}
	out := res.Outcomes[0]
	if out.Delivered {
		t.Fatal("message delivered despite the sender browning out before the retry")
	}
	if out.Attempts != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (paid first, browned out on the retry, budget %d unused)",
			out.Attempts, maxRetries)
	}
	if !bat.Depleted(0) || bat.DepletedAt(0) != 0 {
		t.Fatalf("sender not marked depleted mid-ARQ: depleted=%v at %d", bat.Depleted(0), bat.DepletedAt(0))
	}
	if got := bat.Residual(0); got != 0 {
		t.Fatalf("forfeited residual = %v, want 0", got)
	}
	// Only the one paid attempt is booked and reported.
	if d := math.Abs(bat.SpentJ(0) - txJ); d > conservationTol {
		t.Fatalf("sender booked %.18g, want one attempt %.18g", bat.SpentJ(0), txJ)
	}
	if d := math.Abs(res.EnergyJ - txJ); d > conservationTol {
		t.Fatalf("round energy %.18g, want one lost attempt %.18g", res.EnergyJ, txJ)
	}
	rep := res.Reports[1]
	if rep == nil || !rep.Starved {
		t.Fatalf("destination not starved by the browned-out sender: %+v", rep)
	}

	// The next round the node is terminally silent: no attempts, no energy
	// anywhere — the crash signature the resilient session condemns on.
	res2, err := eng.RunLossy(1, readings, nil, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	if res2.EnergyJ != 0 || res2.Dropped != 1 || res2.Outcomes[0].Attempts != 0 {
		t.Fatalf("depleted sender still active: energy=%v dropped=%d attempts=%d",
			res2.EnergyJ, res2.Dropped, res2.Outcomes[0].Attempts)
	}
}

// TestBatteryReceiverBrownOut depletes a receiver on the incoming frame:
// the frame goes unheard (undelivered), only the energy actually paid is
// booked, and from then on the node is deaf and silent.
func TestBatteryReceiverBrownOut(t *testing.T) {
	inst := lineInstance(t, 3, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 0, 2: 0}

	probeBat, _ := NewBattery(3, 1e6)
	probe, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Battery: probeBat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.RunLossy(0, readings, nil, 3); err != nil {
		t.Fatal(err)
	}
	// Node 1 relays: it pays RX on 0→1 and TX on 1→2. Give it half its
	// round spend so the incoming frame browns it out (its RX share comes
	// first in the round's message order on a line).
	bat, _ := NewBattery(3, 1e6)
	if err := bat.SetCapacity(1, 0.4*probeBat.SpentJ(1)); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Battery: bat})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunLossy(0, readings, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bat.Depleted(1) {
		t.Fatal("undersized relay survived the round")
	}
	var sum float64
	for _, j := range res.PerNodeJ {
		sum += j
	}
	if d := math.Abs(sum - res.EnergyJ); d > conservationTol {
		t.Fatalf("per-node split %.18g != energy %.18g after receiver brown-out", sum, res.EnergyJ)
	}
	if d := math.Abs(bat.TotalSpentJ() - res.EnergyJ); d > conservationTol {
		t.Fatalf("debits %.18g != energy %.18g after receiver brown-out", bat.TotalSpentJ(), res.EnergyJ)
	}
	if rep := res.Reports[2]; rep == nil || rep.Fresh {
		t.Fatalf("destination served despite its relay browning out: %+v", rep)
	}
}

// TestChaosDepleteInjection covers the deterministic depletion injection:
// it behaves like a crash from its round on, and unlike a crash no Revive
// resurrects the node.
func TestChaosDepleteInjection(t *testing.T) {
	in := chaos.New(0).Deplete(5, 2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NodeDead(1, 5) {
		t.Error("node dead before its depletion round")
	}
	for r := 2; r < 5; r++ {
		if !in.NodeDead(r, 5) {
			t.Errorf("node alive at round %d after depleting at 2", r)
		}
	}
	// An earlier Deplete wins; a later one is ignored.
	in.Deplete(5, 9)
	if !in.NodeDead(3, 5) {
		t.Error("later Deplete moved the depletion round")
	}
	if got := in.Depletions()[5]; got != 2 {
		t.Errorf("Depletions()[5] = %d, want 2", got)
	}
	// Revive resurrects a crash but never an exhausted battery.
	rev := chaos.New(0).Crash(7, 1).Revive(7, 3).Deplete(7, 2)
	if err := rev.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rev.NodeDead(4, 7) {
		t.Error("revive resurrected a depleted node")
	}
	if err := chaos.New(0).Deplete(3, -1).Validate(); err == nil {
		t.Error("negative depletion round accepted")
	}

	// Integration: a depleted relay falls silent exactly like a crashed
	// one, byte-identically.
	inst := lineInstance(t, 3, []graph.NodeID{0})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 0, 2: 0}
	run := func(inj *chaos.Injector) *LossyResult {
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunLossy(3, readings, inj, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dep := run(chaos.New(1).Deplete(1, 3))
	crash := run(chaos.New(1).Crash(1, 3))
	if dep.EnergyJ != crash.EnergyJ || dep.Dropped != crash.Dropped || dep.Transmissions != crash.Transmissions {
		t.Fatalf("depletion != crash signature: %+v vs %+v", dep, crash)
	}
}
