package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

func TestOutOfNetworkValuesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := buildInstance(t, rng, 40, 5, 5, false)
	readings := randomReadings(rng, inst.Net.Len())
	res, err := OutOfNetwork(inst.Net, inst.Specs, radio.DefaultModel(), 0, readings)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range inst.Specs {
		vals := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			vals[s] = readings[s]
		}
		want, err := agg.Eval(sp.Func, vals)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[sp.Dest]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("base-computed value at %d = %v, want %v", sp.Dest, res.Values[sp.Dest], want)
		}
	}
	if res.EnergyJ <= 0 || res.Messages <= 0 || res.UpHops <= 0 || res.DownHops <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestOutOfNetworkBottleneck(t *testing.T) {
	// The paper's introduction: nodes near the base are overburdened. The
	// base (or a neighbor) must carry far more energy than the median node,
	// and more than under the in-network optimal plan.
	rng := rand.New(rand.NewSource(22))
	inst := buildInstance(t, rng, 50, 8, 8, false)
	readings := randomReadings(rng, inst.Net.Len())
	base := graph.NodeID(0)

	oon, err := OutOfNetwork(inst.Net, inst.Specs, radio.DefaultModel(), base, readings)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}

	maxOf := func(m map[graph.NodeID]float64) float64 {
		max := 0.0
		for _, v := range m {
			if v > max {
				max = v
			}
		}
		return max
	}
	if maxOf(oon.PerNodeJ) <= maxOf(in.PerNodeJ) {
		t.Errorf("out-of-network bottleneck %v J not above in-network %v J",
			maxOf(oon.PerNodeJ), maxOf(in.PerNodeJ))
	}
	// The hottest out-of-network node must be the base or its neighbor.
	var hottest graph.NodeID
	best := -1.0
	for n, v := range oon.PerNodeJ {
		if v > best {
			best, hottest = v, n
		}
	}
	if hottest != base && !inst.Net.HasEdge(hottest, base) {
		t.Errorf("hottest node %d is not at the base's neighborhood", hottest)
	}
}

func TestOutOfNetworkErrors(t *testing.T) {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	specs := []agg.Spec{{Dest: 1, Func: agg.NewWeightedSum(map[graph.NodeID]float64{0: 1})}}
	if _, err := OutOfNetwork(g, specs, radio.DefaultModel(), 2, nil); err == nil {
		t.Error("unreachable base accepted")
	}
	if _, err := OutOfNetwork(g, specs, radio.DefaultModel(), 9, nil); err == nil {
		t.Error("out-of-range base accepted")
	}
	if _, err := OutOfNetwork(g, specs, radio.Model{}, 0, nil); err == nil {
		t.Error("invalid radio accepted")
	}
}

func TestPerNodeEnergySumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := buildInstance(t, rng, 35, 5, 5, true)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(randomReadings(rng, inst.Net.Len()))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.PerNodeJ {
		sum += v
	}
	if math.Abs(sum-res.EnergyJ) > 1e-9 {
		t.Errorf("per-node sum %v != total %v", sum, res.EnergyJ)
	}
}

func TestBroadcastModeEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p := plan.Multicast(inst) // lots of duplicated raw units: broadcast's best case
	uni, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Broadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	ru, err := uni.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bc.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	// Values must be identical; broadcast only changes the energy model.
	for d, v := range ru.Values {
		if math.Abs(rb.Values[d]-v) > 1e-9 {
			t.Fatalf("broadcast changed value at %d", d)
		}
	}
	// Deduplicated raw units can only shrink the body payload.
	if rb.BodyBytes > ru.BodyBytes {
		t.Errorf("broadcast body %d B exceeds unicast %d B", rb.BodyBytes, ru.BodyBytes)
	}
	// Per-node energy still sums to the total.
	sum := 0.0
	for _, v := range rb.PerNodeJ {
		sum += v
	}
	if math.Abs(sum-rb.EnergyJ) > 1e-9 {
		t.Errorf("broadcast per-node sum %v != total %v", sum, rb.EnergyJ)
	}
}

func TestBroadcastIncompatibleWithEdgeHops(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	inst := buildInstance(t, rng, 20, 3, 3, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEngine(p, radio.DefaultModel(), Options{
		Broadcast: true,
		EdgeHops:  func(routing.Edge) int { return 2 },
	})
	if err == nil {
		t.Error("Broadcast+EdgeHops accepted")
	}
}
