package sim

import (
	"fmt"

	"m2m/internal/graph"
	"m2m/internal/routing"
	"m2m/internal/schedule"
)

// This file is the contention-aware channel: a slotted collision model
// (protocol interference, no collision detection — after Chang & Guan)
// and the transmission disciplines that ride it out. The centerpiece is
// the collision oracle: a per-round, purely deterministic slot-by-slot
// resolution of every planned message's fate — delivered, collided, or
// lost, per attempt — that BOTH the synchronous ARQ executor and the
// event-driven executor replay instead of consulting the channel
// directly. One resolution, two executors: the same seed yields
// identical collision outcomes everywhere by construction.
//
// The slot model: a message becomes eligible when its wait-for
// dependencies (Theorem 2's DAG, at message granularity) have resolved.
// Each sender's radio transmits at most one frame per slot (same-sender
// traffic serializes FIFO in planned order). Two frames in one slot
// destroy each other when they conflict under the protocol interference
// model — shared receiver, or either receiver in range of the other
// sender — unless a seeded capture draw rescues one, or the receiver is
// outside the configured collision scope. A destroyed frame still costs
// the sender TX and the receiver RX (the wreck is heard, then fails its
// checksum); a plain loss costs TX only.
//
// Transmission disciplines (TxMode):
//
//   - TxUnscheduled: send as soon as dependencies allow, retry in the
//     very next slot — lockstep retries re-collide, the failure mode the
//     other two modes exist to fix;
//   - TxBackoff: as above, but retries wait a seeded random binary
//     exponential backoff, de-synchronizing contending senders;
//   - TxTDMA: first attempts fire in the slots of a validated
//     internal/schedule frame (conflict-free by construction — a
//     fault-free TDMA round has zero collisions and is byte-identical to
//     Engine.Run), with backoff ARQ as the recovery path for retries,
//     which fall outside the frame's guarantees.
//
// Known approximation: the oracle gates senders and receivers on the
// fault schedule's NodeDead at round start, not on mid-round battery
// brown-outs — those are applied by each executor while replaying (a
// browned-out sender abandons its remaining oracle attempts, exactly as
// it abandons ARQ retries today).

// TxMode selects the engine's transmission discipline under the
// collision channel. It has no effect unless the fault schedule enables
// collisions (chaos.WithCollisions).
type TxMode int

const (
	// TxUnscheduled sends ASAP and retries in the next slot.
	TxUnscheduled TxMode = iota
	// TxBackoff sends ASAP and retries after a seeded random binary
	// exponential backoff.
	TxBackoff
	// TxTDMA drives first attempts off the loaded schedule frame and
	// recovers retries with backoff ARQ. Requires EnableTDMA or LoadFrame.
	TxTDMA
)

func (m TxMode) String() string {
	switch m {
	case TxUnscheduled:
		return "unscheduled"
	case TxBackoff:
		return "backoff"
	case TxTDMA:
		return "tdma"
	default:
		return fmt.Sprintf("txmode(%d)", int(m))
	}
}

// CollisionFaults extends the Faults schedule with the contention
// dimensions (chaos.Injector implements it). All methods must be pure
// functions of their arguments.
type CollisionFaults interface {
	Faults
	// CollisionsEnabled reports whether the slot-contention model is on;
	// when false the executors bypass the oracle entirely.
	CollisionsEnabled() bool
	// CollisionReceiver reports whether frames toward n are in collision
	// scope (out-of-scope receivers never lose frames to contention but
	// their senders still interfere with in-scope ones).
	CollisionReceiver(n graph.NodeID) bool
	// CaptureWins reports whether the attempt-th frame of the round on e
	// survives a collision it is part of.
	CaptureWins(round int, e routing.Edge, attempt int) bool
	// BackoffSlots draws a uniform backoff in [0, window) slots.
	BackoffSlots(round int, e routing.Edge, attempt, window int) int
}

// contention is the static conflict topology of the engine's message
// layout: which planned messages cannot share a slot, plus the schedule
// form of the layout. Built lazily once per engine; immutable after.
type contention struct {
	msgs     []schedule.Message
	conflict [][]int // conflict[mi] = message indices mi interferes with, ascending
	maxBody  int     // largest planned message body in bytes (slot sizing)
}

// contentionTopo builds (once) the conflict adjacency over the message
// layout. Unavailable in broadcast mode, like MessageGraph.
func (e *Engine) contentionTopo() (*contention, error) {
	e.contOnce.Do(func() {
		infos, err := e.MessageGraph()
		if err != nil {
			e.contErr = err
			return
		}
		ct := &contention{
			msgs:     make([]schedule.Message, len(infos)),
			conflict: make([][]int, len(infos)),
		}
		for i, inf := range infos {
			ct.msgs[i] = schedule.Message{From: inf.From, To: inf.To, Deps: inf.Deps}
		}
		net := e.Plan.Inst.Net
		for i := range ct.msgs {
			for j := i + 1; j < len(ct.msgs); j++ {
				if schedule.Conflicts(net, ct.msgs[i], ct.msgs[j]) {
					ct.conflict[i] = append(ct.conflict[i], j)
					ct.conflict[j] = append(ct.conflict[j], i)
				}
			}
		}
		for _, msg := range e.messages {
			body := 0
			for _, ui := range msg {
				body += int(e.prog.unitBytes[ui])
			}
			if body > ct.maxBody {
				ct.maxBody = body
			}
		}
		e.cont = ct
	})
	return e.cont, e.contErr
}

// BuildSchedule derives the TDMA frame for the engine's message layout:
// the wait-for DAG supplies the precedence edges and the greedy colorer
// packs non-conflicting messages into shared slots.
func (e *Engine) BuildSchedule() (*schedule.Schedule, []schedule.Message, error) {
	ct, err := e.contentionTopo()
	if err != nil {
		return nil, nil, err
	}
	s, err := schedule.Build(e.Plan.Inst.Net, ct.msgs)
	if err != nil {
		return nil, nil, err
	}
	return s, ct.msgs, nil
}

// EnableTDMA builds, validates, and installs the engine's own TDMA frame
// and switches the transmission discipline to TxTDMA. Not safe to call
// concurrently with running rounds.
func (e *Engine) EnableTDMA() error {
	s, msgs, err := e.BuildSchedule()
	if err != nil {
		return err
	}
	if err := s.Validate(e.Plan.Inst.Net, msgs); err != nil {
		return err
	}
	e.txSched = s
	e.txMode = TxTDMA
	return nil
}

// LoadFrame installs a TDMA frame from a bare slot assignment — the form
// a frame arrives in off the wire — validating it against the engine's
// message graph before anything executes from it, and switches to
// TxTDMA. Not safe to call concurrently with running rounds.
func (e *Engine) LoadFrame(slotOf []int) error {
	ct, err := e.contentionTopo()
	if err != nil {
		return err
	}
	s, err := schedule.FromSlotOf(slotOf)
	if err != nil {
		return err
	}
	if err := s.Validate(e.Plan.Inst.Net, ct.msgs); err != nil {
		return err
	}
	e.txSched = s
	e.txMode = TxTDMA
	return nil
}

// SetTxMode selects the transmission discipline. TxTDMA requires a frame
// installed by EnableTDMA or LoadFrame first. Not safe to call
// concurrently with running rounds.
func (e *Engine) SetTxMode(m TxMode) error {
	switch m {
	case TxUnscheduled, TxBackoff:
		e.txMode = m
	case TxTDMA:
		if e.txSched == nil {
			return fmt.Errorf("sim: TxTDMA needs a schedule frame (EnableTDMA or LoadFrame first)")
		}
		e.txMode = m
	default:
		return fmt.Errorf("sim: unknown tx mode %d", int(m))
	}
	return nil
}

// TransmitMode returns the current transmission discipline.
func (e *Engine) TransmitMode() TxMode { return e.txMode }

// Frame returns the installed TDMA slot assignment (nil when none).
func (e *Engine) Frame() []int {
	if e.txSched == nil {
		return nil
	}
	return append([]int(nil), e.txSched.SlotOf...)
}

// Per-attempt channel outcomes the oracle hands to the executors.
const (
	coLost      byte = iota // nothing heard: sender TX only
	coCollided              // wreck heard: sender TX + receiver RX, no ack
	coDelivered             // frame heard intact (the fence may still discard it)
)

// collisionPlan is one round's resolved contention: for every planned
// message, the outcome of each transmission attempt the slot model
// simulated, in order. Executors replay these outcomes one-for-one with
// their own attempts instead of consulting Deliver themselves.
type collisionPlan struct {
	tries     [][]byte
	delivered []bool
	slotOf    []int // TxTDMA first-attempt slots (nil otherwise)
	maxBody   int
	mode      TxMode
}

// outcome returns the fate of the try-th attempt of message mi. Attempts
// past the simulated horizon (an event-driven executor's spurious
// retransmissions of already-delivered data) report coLost: the frame
// vanishes into contention noise, which the dedup window would have
// discarded anyway.
func (p *collisionPlan) outcome(mi, try int) byte {
	if try < len(p.tries[mi]) {
		return p.tries[mi][try]
	}
	return coLost
}

// attemptSalt decorrelates the per-(message, try) capture and backoff
// draws: message indices share edges (and an edge its draw inputs), so
// the attempt axis carries the message identity too.
func attemptSalt(mi, try int) int {
	if try > 63 {
		try = 63
	}
	return mi*64 + try
}

// collisionPlanFor resolves the round's contention, or returns nil when
// the fault schedule does not enable collisions. edgeOK is the epoch
// fence view (nil = all edges current): a fenced edge's frames are heard
// but never acknowledged, so its sender burns the whole retry budget.
func (e *Engine) collisionPlanFor(round int, faults Faults, maxRetries int, edgeOK []bool) (*collisionPlan, error) {
	cf, ok := faults.(CollisionFaults)
	if !ok || !cf.CollisionsEnabled() {
		return nil, nil
	}
	ct, err := e.contentionTopo()
	if err != nil {
		return nil, fmt.Errorf("sim: collision model: %w", err)
	}
	if e.txMode == TxTDMA && e.txSched == nil {
		return nil, fmt.Errorf("sim: TxTDMA without a loaded frame")
	}
	topo := e.asyncTopology()
	n := len(e.messages)
	p := &collisionPlan{
		tries:     make([][]byte, n),
		delivered: make([]bool, n),
		maxBody:   ct.maxBody,
		mode:      e.txMode,
	}
	if e.txMode == TxTDMA {
		p.slotOf = e.txSched.SlotOf
	}

	// base[mi] is the earliest slot the discipline allows mi's first
	// attempt in; want[mi] the next slot it will transmit in (-1 =
	// waiting or finished); waiting[mi] its unresolved dependency count.
	base := make([]int, n)
	if p.slotOf != nil {
		copy(base, p.slotOf)
	}
	want := make([]int, n)
	waiting := make([]int, n)
	finished := make([]bool, n)
	recvDead := make([]bool, n)
	fenced := make([]bool, n)
	for mi := range want {
		want[mi] = -1
		waiting[mi] = len(topo.deps[mi])
		edge := ct.msgs[mi]
		recvDead[mi] = faults.NodeDead(round, edge.To)
		if edgeOK != nil {
			fenced[mi] = !edgeOK[e.prog.msgEdge[mi]]
		}
	}
	attemptCtr := make([]int, e.prog.nMsgEdges)
	pending := 0

	// resolve marks mi settled at the end of slot s: dependents may
	// transmit from s+1 on. A dead sender resolves before slot 0 (s=-1):
	// silence, zero attempts, exactly like the ARQ executor's gate.
	var resolve func(mi, s int)
	ready := func(mi, s int) {
		if faults.NodeDead(round, ct.msgs[mi].From) {
			finished[mi] = true
			resolve(mi, s)
			return
		}
		w := base[mi]
		if w < s+1 {
			w = s + 1
		}
		want[mi] = w
		pending++
	}
	resolve = func(mi, s int) {
		for _, dm := range topo.dependents[mi] {
			waiting[dm]--
			if waiting[dm] == 0 {
				ready(dm, s)
			}
		}
	}
	for mi := range want {
		if waiting[mi] == 0 {
			ready(mi, -1)
		}
	}

	inSlot := make(map[int]bool, 8)
	for pending > 0 {
		// Next populated slot.
		s := -1
		for mi, w := range want {
			if !finished[mi] && w >= 0 && (s == -1 || w < s) {
				s = w
			}
		}
		if s == -1 {
			break
		}
		// One frame per sender per slot: the radio serializes its own
		// queue in planned order; deferred frames slip one slot.
		var txs []int
		sender := make(map[graph.NodeID]bool)
		for mi, w := range want {
			if finished[mi] || w != s {
				continue
			}
			from := ct.msgs[mi].From
			if sender[from] {
				want[mi] = s + 1
				continue
			}
			sender[from] = true
			txs = append(txs, mi)
		}
		for k := range inSlot {
			delete(inSlot, k)
		}
		for _, mi := range txs {
			inSlot[mi] = true
		}
		for _, mi := range txs {
			edge := routing.Edge{From: ct.msgs[mi].From, To: ct.msgs[mi].To}
			try := len(p.tries[mi])
			conflicted := false
			for _, other := range e.cont.conflict[mi] {
				if inSlot[other] {
					conflicted = true
					break
				}
			}
			var oc byte
			switch {
			case conflicted && cf.CollisionReceiver(edge.To) && !cf.CaptureWins(round, edge, attemptSalt(mi, try)):
				oc = coCollided
			case recvDead[mi]:
				oc = coLost
			default:
				eid := e.prog.msgEdge[mi]
				seq := attemptCtr[eid]
				attemptCtr[eid]++
				if faults.Deliver(round, edge, seq) {
					oc = coDelivered
				} else {
					oc = coLost
				}
			}
			p.tries[mi] = append(p.tries[mi], oc)
			if oc == coDelivered && !fenced[mi] {
				p.delivered[mi] = true
				finished[mi] = true
				pending--
				resolve(mi, s)
				continue
			}
			// Lost, collided, or heard-but-fenced (never acknowledged):
			// retry if budget remains, per the discipline.
			if try >= maxRetries {
				finished[mi] = true
				pending--
				resolve(mi, s)
				continue
			}
			next := s + 1
			if e.txMode != TxUnscheduled {
				window := 2
				for i := 0; i < try && i < 5; i++ {
					window *= 2
				}
				next += cf.BackoffSlots(round, edge, attemptSalt(mi, try), window)
			}
			want[mi] = next
		}
	}
	return p, nil
}
