package sim

import (
	"math"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
	"m2m/internal/topology"
	"m2m/internal/workload"
)

// TestMergeFallbackOnRealCycle pins the configuration discovered during
// development where the one-message-per-edge merge genuinely hits a
// wait-for cycle (the paper: "such situations seem to be quite rare" —
// here 1 edge out of 687 must split). The fallback must (a) terminate,
// (b) split only minimally, and (c) leave execution exact.
func TestMergeFallbackOnRealCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("150-node instance skipped in -short mode")
	}
	l := topology.Scaled(150, 1)
	g := l.ConnectivityGraph(radio.DefaultRangeMeters)
	specs, err := workload.Generate(g, workload.Config{
		DestFraction:   0.25,
		SourcesPerDest: 22, // 0.15 × 150
		MaxHops:        0,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := plan.NewInstance(g, routing.NewReversePath(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := make(map[graph.NodeID]float64, g.Len())
	for i := 0; i < g.Len(); i++ {
		readings[graph.NodeID(i)] = float64(i%23) - 11
	}
	res, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	extra := res.Messages - len(inst.EdgeList)
	if extra < 1 {
		t.Skipf("cycle no longer present (messages=%d edges=%d); fallback unexercised",
			res.Messages, len(inst.EdgeList))
	}
	if extra > 4 {
		t.Errorf("fallback split too much: %d extra messages", extra)
	}
	// Golden values despite the split.
	for _, sp := range inst.Specs {
		vals := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			vals[s] = readings[s]
		}
		want, err := agg.Eval(sp.Func, vals)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Values[sp.Dest]; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("destination %d = %v, want %v", sp.Dest, got, want)
		}
	}
}

func TestCyclicCore(t *testing.T) {
	d := graph.NewDigraph(6)
	// Cycle 1→2→3→1, with 0 feeding in, 4 locked behind it, 5 free.
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	d.AddArc(2, 3)
	d.AddArc(3, 1)
	d.AddArc(3, 4)
	core := d.CyclicCore()
	want := map[int]bool{1: true, 2: true, 3: true, 4: true}
	if len(core) != len(want) {
		t.Fatalf("core = %v", core)
	}
	for _, v := range core {
		if !want[v] {
			t.Fatalf("core = %v", core)
		}
	}
	if graph.NewDigraph(3).CyclicCore() != nil {
		t.Error("empty DAG has non-nil core")
	}
}
