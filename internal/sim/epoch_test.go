package sim

import (
	"context"
	"math/rand"
	"testing"

	"m2m/internal/chaos"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

// epochFaults is a test schedule with an epoch view: the channel itself is
// perfect (or delegates to base), but the listed nodes still run an older
// plan epoch, so every edge they touch is fenced.
type epochFaults struct {
	base    Faults
	epoch   uint32
	lagging map[graph.NodeID]uint32
}

func (f epochFaults) NodeDead(round int, n graph.NodeID) bool {
	if f.base == nil {
		return false
	}
	return f.base.NodeDead(round, n)
}
func (f epochFaults) Deliver(round int, e routing.Edge, attempt int) bool {
	if f.base == nil {
		return true
	}
	return f.base.Deliver(round, e, attempt)
}
func (f epochFaults) PlanEpoch() uint32 { return f.epoch }
func (f epochFaults) NodeEpoch(n graph.NodeID) uint32 {
	if e, ok := f.lagging[n]; ok {
		return e
	}
	return f.epoch
}

// A lagging node fences every edge it touches: frames are heard (and
// priced) but never merged, so the destination starves exactly as if the
// links were down — except the receiver also pays for what it discarded.
func TestEpochFenceDropsStaleFrames(t *testing.T) {
	// 0—1—2—3, dest 3 sums {0, 2}; node 1 lags, severing 0→1 and 1→2.
	inst := lineInstance(t, 4, []graph.NodeID{0, 2})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 2, 2: 5}
	const maxRetries = 2
	fenced, err := eng.RunLossy(0, readings, epochFaults{epoch: 4, lagging: map[graph.NodeID]uint32{1: 3}}, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	if fenced.EpochDropped == 0 {
		t.Fatal("no frame was epoch-dropped across a lagging node")
	}
	for _, o := range fenced.Outcomes {
		touches := o.Edge.From == 1 || o.Edge.To == 1
		if touches && o.Delivered {
			t.Fatalf("fenced edge %v delivered", o.Edge)
		}
		if touches && o.Attempts != maxRetries+1 {
			t.Fatalf("fenced edge %v burned %d attempts, want the full budget %d", o.Edge, o.Attempts, maxRetries+1)
		}
		if !touches && !o.Delivered {
			t.Fatalf("open edge %v failed on a perfect channel", o.Edge)
		}
	}
	rep := fenced.Reports[3]
	if rep == nil || rep.Fresh {
		t.Fatalf("destination fresh despite a fenced relay: %+v", rep)
	}
	for d, rep := range fenced.Reports {
		if err := rep.Validate(); err != nil {
			t.Fatalf("dest %d: %v", d, err)
		}
	}

	// The same topology with those links simply down burns the same
	// attempts but hears nothing: the fenced run costs strictly more,
	// because its receivers paid RX for every frame they discarded.
	down, err := eng.RunLossy(0, readings, edgeFaults{down: map[routing.Edge]bool{
		{From: 0, To: 1}: true, {From: 1, To: 2}: true,
	}}, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	if fenced.EnergyJ <= down.EnergyJ {
		t.Fatalf("fenced energy %v not above link-down energy %v", fenced.EnergyJ, down.EnergyJ)
	}
	if fenced.Dropped != down.Dropped {
		t.Fatalf("fenced dropped %d messages, link-down %d", fenced.Dropped, down.Dropped)
	}
}

// A schedule whose every node runs the current epoch fences nothing: the
// round is byte-identical to the nil-faults run.
func TestEpochFenceCurrentEpochNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := buildInstance(t, rng, 30, 4, 4, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	plain, err := eng.RunLossy(0, readings, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	current, err := eng.RunLossy(0, readings, epochFaults{epoch: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if current.EpochDropped != 0 {
		t.Fatalf("EpochDropped = %d with every node current", current.EpochDropped)
	}
	if current.EnergyJ != plain.EnergyJ || current.Dropped != 0 {
		t.Fatalf("all-current fence changed the round: energy %v vs %v, dropped %d",
			current.EnergyJ, plain.EnergyJ, current.Dropped)
	}
	for d, v := range plain.Values {
		if current.Values[d] != v {
			t.Fatalf("value at %d changed under a no-op fence", d)
		}
	}
}

// The asynchronous executor honors the same fence: heard copies are
// discarded and counted, no ack forms, and the message resolves lost
// instead of hanging the round.
func TestEpochFenceAsync(t *testing.T) {
	inst := lineInstance(t, 4, []graph.NodeID{0, 2})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 2, 2: 5}
	fence := epochFaults{epoch: 4, lagging: map[graph.NodeID]uint32{1: 3}}
	async, err := eng.RunAsync(0, readings, fence, AsyncConfig{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if async.EpochDropped == 0 {
		t.Fatal("async executor merged (or never heard) fenced frames")
	}
	sync, err := eng.RunLossy(0, readings, fence, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range async.Outcomes {
		if (o.Edge.From == 1 || o.Edge.To == 1) && o.Delivered {
			t.Fatalf("async delivered across fenced edge %v", o.Edge)
		}
	}
	for d, rep := range sync.Reports {
		arep := async.Reports[d]
		if arep == nil || arep.Fresh != rep.Fresh || arep.Starved != rep.Starved {
			t.Fatalf("dest %d: async report %+v, sync %+v", d, arep, rep)
		}
	}
	validateAll(t, async)
}

// The chaos determinism contract across executors: one injector seed fixes
// every message's fate, so the synchronous and asynchronous executors
// agree outcome for outcome, and re-runs are identical.
func TestChaosCrossExecutorDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	mkInj := func() *chaos.Injector {
		return chaos.New(77).WithUniformLoss(0.25).Crash(11, 2)
	}
	const maxRetries = 3
	for r := 0; r < 4; r++ {
		a, err := eng.RunLossy(r, readings, mkInj(), maxRetries)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.RunLossy(r, readings, mkInj(), maxRetries)
		if err != nil {
			t.Fatal(err)
		}
		async, err := eng.RunAsync(r, readings, mkInj(), AsyncConfig{MaxRetries: maxRetries})
		if err != nil {
			t.Fatal(err)
		}
		for _, other := range []*LossyResult{b, &async.LossyResult} {
			if len(other.Outcomes) != len(a.Outcomes) {
				t.Fatalf("round %d: %d outcomes vs %d", r, len(other.Outcomes), len(a.Outcomes))
			}
			for i, o := range a.Outcomes {
				oo := other.Outcomes[i]
				if oo.Edge != o.Edge || oo.Delivered != o.Delivered || oo.Attempts != o.Attempts {
					t.Fatalf("round %d message %d: %+v vs %+v", r, i, oo, o)
				}
			}
			for d, rep := range a.Reports {
				orep := other.Reports[d]
				if orep == nil || orep.Fresh != rep.Fresh || orep.Starved != rep.Starved ||
					len(orep.Missing) != len(rep.Missing) {
					t.Fatalf("round %d dest %d: report %+v vs %+v", r, d, orep, rep)
				}
			}
			for d, v := range a.Values {
				if other.Values[d] != v {
					t.Fatalf("round %d dest %d: value %v vs %v", r, d, other.Values[d], v)
				}
			}
		}
		if a.EnergyJ != b.EnergyJ || a.Retries != b.Retries || a.Dropped != b.Dropped {
			t.Fatalf("round %d: same seed, different sync telemetry", r)
		}
	}

	// Same contract with the collision channel switched on: both executors
	// replay the same contention oracle, so per-message fates, collision
	// counts, and values agree exactly under loss, crash, and contention
	// at once.
	mkColl := func() *chaos.Injector {
		return chaos.New(77).WithUniformLoss(0.15).WithCollisions(0.3).Crash(11, 2)
	}
	for r := 0; r < 4; r++ {
		a, err := eng.RunLossy(r, readings, mkColl(), maxRetries)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.RunLossy(r, readings, mkColl(), maxRetries)
		if err != nil {
			t.Fatal(err)
		}
		async, err := eng.RunAsync(r, readings, mkColl(), AsyncConfig{MaxRetries: maxRetries})
		if err != nil {
			t.Fatal(err)
		}
		if a.Collisions != b.Collisions || a.Collisions != async.Collisions {
			t.Fatalf("round %d: collision counts diverge: %d / %d / %d",
				r, a.Collisions, b.Collisions, async.Collisions)
		}
		for _, other := range []*LossyResult{b, &async.LossyResult} {
			for i, o := range a.Outcomes {
				oo := other.Outcomes[i]
				if oo.Edge != o.Edge || oo.Delivered != o.Delivered || oo.Attempts != o.Attempts {
					t.Fatalf("round %d message %d: %+v vs %+v", r, i, oo, o)
				}
			}
			for d, v := range a.Values {
				if other.Values[d] != v {
					t.Fatalf("round %d dest %d: value %v vs %v", r, d, other.Values[d], v)
				}
			}
		}
	}

	// The concurrent batch runner shares the compiled program: fault-free
	// values must be bit-identical to the lossy executor's under a nil
	// schedule, whatever the worker interleaving.
	batch := make([]map[graph.NodeID]float64, 8)
	for i := range batch {
		batch[i] = randomReadings(rng, inst.Net.Len())
	}
	conc, err := eng.RunConcurrent(context.Background(), batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, readings := range batch {
		ref, err := eng.RunLossy(0, readings, nil, maxRetries)
		if err != nil {
			t.Fatal(err)
		}
		for d, v := range ref.Values {
			if conc[i].Values[d] != v {
				t.Fatalf("batch %d dest %d: concurrent value %v, want %v", i, d, conc[i].Values[d], v)
			}
		}
	}
}
