package sim

import (
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/chaos"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

// starInstance builds a hub at 0 with direct spokes 1..n: the worst-case
// fan-in workload where every planned message shares the receiver, so
// every concurrent transmission collides.
func starInstance(t *testing.T, spokes int) *plan.Instance {
	t.Helper()
	g := graph.NewUndirected(spokes + 1)
	w := make(map[graph.NodeID]float64, spokes)
	for i := 1; i <= spokes; i++ {
		if err := g.AddEdge(0, graph.NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
		w[graph.NodeID(i)] = 1
	}
	specs := []agg.Spec{{Dest: 0, Func: agg.NewWeightedSum(w)}}
	inst, err := plan.NewInstance(g, routing.NewReversePath(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func collideEngine(t *testing.T, inst *plan.Instance) *Engine {
	t.Helper()
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTDMAFaultFreeByteIdenticalLossy(t *testing.T) {
	// The acceptance bar: with collisions enabled but no link loss, a
	// validated TDMA frame is conflict-free, so the round must reproduce
	// Engine.Run bit for bit — values, total energy, and per-node energy —
	// with zero collisions and zero retries.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		inst := buildInstance(t, rng, 40, 6, 6, trial == 1)
		eng := collideEngine(t, inst)
		if err := eng.EnableTDMA(); err != nil {
			t.Fatal(err)
		}
		readings := randomReadings(rng, inst.Net.Len())
		plain, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(int64(trial)).WithCollisions(0.3)
		lossy, err := eng.RunLossy(trial, readings, inj, 2)
		if err != nil {
			t.Fatal(err)
		}
		if lossy.Collisions != 0 {
			t.Fatalf("trial %d: %d collisions under a validated frame", trial, lossy.Collisions)
		}
		if lossy.Retries != 0 || lossy.Dropped != 0 {
			t.Fatalf("trial %d: retries=%d dropped=%d on a fault-free TDMA round", trial, lossy.Retries, lossy.Dropped)
		}
		if lossy.EnergyJ != plain.EnergyJ {
			t.Fatalf("trial %d: energy %v != %v", trial, lossy.EnergyJ, plain.EnergyJ)
		}
		if len(lossy.Values) != len(plain.Values) {
			t.Fatalf("trial %d: %d values, want %d", trial, len(lossy.Values), len(plain.Values))
		}
		for d, v := range plain.Values {
			if lossy.Values[d] != v {
				t.Fatalf("trial %d: value at %d = %v, want %v (bit-exact)", trial, d, lossy.Values[d], v)
			}
		}
		for n, j := range plain.PerNodeJ {
			if lossy.PerNodeJ[n] != j {
				t.Fatalf("trial %d: per-node energy at %d differs", trial, n)
			}
		}
	}
}

func TestTDMAFaultFreeByteIdenticalAsync(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		inst := buildInstance(t, rng, 35, 5, 5, trial == 2)
		eng := collideEngine(t, inst)
		if err := eng.EnableTDMA(); err != nil {
			t.Fatal(err)
		}
		readings := randomReadings(rng, inst.Net.Len())
		plain, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		inj := chaos.New(int64(trial)).WithCollisions(0.3)
		async, err := eng.RunAsync(trial, readings, inj, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		validateAll(t, async)
		if async.Collisions != 0 {
			t.Fatalf("trial %d: %d collisions under a validated frame", trial, async.Collisions)
		}
		if async.EnergyJ != plain.EnergyJ {
			t.Fatalf("trial %d: energy %v != %v", trial, async.EnergyJ, plain.EnergyJ)
		}
		for d, v := range plain.Values {
			if async.Values[d] != v {
				t.Fatalf("trial %d: value at %d = %v, want %v (bit-exact)", trial, d, async.Values[d], v)
			}
		}
		for n, j := range plain.PerNodeJ {
			if async.PerNodeJ[n] != j {
				t.Fatalf("trial %d: per-node energy at %d differs", trial, n)
			}
		}
	}
}

func TestContentionDisciplines(t *testing.T) {
	// Six spokes all firing at one hub. Unscheduled retries are lockstep
	// and re-collide until the budget dies: total loss. Backoff
	// de-synchronizes and recovers some messages. TDMA serializes the
	// frame and delivers everything collision-free.
	inst := starInstance(t, 6)
	readings := randomReadings(rand.New(rand.NewSource(7)), inst.Net.Len())
	inj := chaos.New(11).WithCollisions(0)

	eng := collideEngine(t, inst)
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}

	unsched, err := eng.RunLossy(0, readings, inj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if unsched.Dropped != unsched.Messages {
		t.Fatalf("unscheduled: %d/%d dropped, lockstep retries should all re-collide",
			unsched.Dropped, unsched.Messages)
	}
	if unsched.Collisions != unsched.Transmissions {
		t.Fatalf("unscheduled: %d collisions over %d transmissions, expected every attempt wrecked",
			unsched.Collisions, unsched.Transmissions)
	}
	if rep := unsched.Reports[0]; rep == nil || !rep.Starved {
		t.Fatalf("unscheduled: destination not starved: %+v", rep)
	}
	if unsched.EnergyJ <= plain.EnergyJ {
		t.Fatalf("unscheduled contention spent %v J, should exceed the clean round's %v J",
			unsched.EnergyJ, plain.EnergyJ)
	}

	if err := eng.SetTxMode(TxBackoff); err != nil {
		t.Fatal(err)
	}
	backoff, err := eng.RunLossy(0, readings, inj, 6)
	if err != nil {
		t.Fatal(err)
	}
	if backoff.Dropped >= unsched.Dropped {
		t.Fatalf("backoff dropped %d, no better than unscheduled's %d", backoff.Dropped, unsched.Dropped)
	}
	if delivered := backoff.Messages - backoff.Dropped; delivered == 0 {
		t.Fatal("backoff recovered nothing")
	}

	if err := eng.EnableTDMA(); err != nil {
		t.Fatal(err)
	}
	tdma, err := eng.RunLossy(0, readings, inj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tdma.Collisions != 0 || tdma.Dropped != 0 || tdma.Retries != 0 {
		t.Fatalf("tdma: collisions=%d dropped=%d retries=%d, want a clean frame",
			tdma.Collisions, tdma.Dropped, tdma.Retries)
	}
	if tdma.EnergyJ != plain.EnergyJ {
		t.Fatalf("tdma energy %v != clean round %v", tdma.EnergyJ, plain.EnergyJ)
	}
	for d, v := range plain.Values {
		if tdma.Values[d] != v {
			t.Fatalf("tdma value at %d = %v, want %v", d, tdma.Values[d], v)
		}
	}
}

func TestCaptureRescuesFrames(t *testing.T) {
	// With a strong capture effect most colliding frames survive anyway,
	// so the same lockstep workload that totally starves without capture
	// now mostly delivers.
	inst := starInstance(t, 6)
	readings := randomReadings(rand.New(rand.NewSource(7)), inst.Net.Len())
	eng := collideEngine(t, inst)

	none, err := eng.RunLossy(0, readings, chaos.New(11).WithCollisions(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := eng.RunLossy(0, readings, chaos.New(11).WithCollisions(0.95), 3)
	if err != nil {
		t.Fatal(err)
	}
	if capture.Dropped >= none.Dropped {
		t.Fatalf("capture dropped %d, no better than no-capture %d", capture.Dropped, none.Dropped)
	}
	if delivered := capture.Messages - capture.Dropped; delivered < capture.Messages/2 {
		t.Fatalf("capture at 0.95 delivered only %d of %d", delivered, capture.Messages)
	}
}

func TestCollisionScopeExemptsReceiver(t *testing.T) {
	// Scope restricted to a node that receives nothing here: frames toward
	// the hub never collide, so the contended round is byte-identical to
	// the clean one.
	inst := starInstance(t, 6)
	readings := randomReadings(rand.New(rand.NewSource(7)), inst.Net.Len())
	eng := collideEngine(t, inst)
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(11).WithCollisions(0).WithCollisionReceivers(inst.Net.Len(), 3)
	res, err := eng.RunLossy(0, readings, inj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 || res.Dropped != 0 {
		t.Fatalf("out-of-scope receiver still lost frames: collisions=%d dropped=%d",
			res.Collisions, res.Dropped)
	}
	if res.EnergyJ != plain.EnergyJ {
		t.Fatalf("energy %v != %v", res.EnergyJ, plain.EnergyJ)
	}
	for d, v := range plain.Values {
		if res.Values[d] != v {
			t.Fatalf("value at %d = %v, want %v", d, res.Values[d], v)
		}
	}
}

func TestLoadFrameValidation(t *testing.T) {
	inst := starInstance(t, 5)
	eng := collideEngine(t, inst)
	s, msgs, err := eng.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != len(s.SlotOf) {
		t.Fatalf("%d slots for %d messages", len(s.SlotOf), len(msgs))
	}
	if err := eng.LoadFrame(s.SlotOf); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	if eng.TransmitMode() != TxTDMA {
		t.Fatalf("mode %v after LoadFrame", eng.TransmitMode())
	}

	// All-zero assignment packs every conflicting spoke into one slot.
	bad := make([]int, len(s.SlotOf))
	if err := eng.LoadFrame(bad); err == nil {
		t.Fatal("conflicting frame accepted")
	}
	// Truncated frame leaves messages unassigned.
	if err := eng.LoadFrame(s.SlotOf[:len(s.SlotOf)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Negative slots are malformed on their face.
	neg := append([]int(nil), s.SlotOf...)
	neg[0] = -1
	if err := eng.LoadFrame(neg); err == nil {
		t.Fatal("negative slot accepted")
	}
	// Failed loads must not clobber the installed frame.
	if eng.TransmitMode() != TxTDMA || eng.Frame() == nil {
		t.Fatal("failed LoadFrame corrupted the installed frame")
	}
}

func TestSetTxModeRules(t *testing.T) {
	eng := collideEngine(t, starInstance(t, 4))
	if eng.TransmitMode() != TxUnscheduled {
		t.Fatalf("default mode %v", eng.TransmitMode())
	}
	if eng.Frame() != nil {
		t.Fatal("frame installed before EnableTDMA")
	}
	if err := eng.SetTxMode(TxTDMA); err == nil {
		t.Fatal("TxTDMA accepted without a frame")
	}
	if err := eng.SetTxMode(TxMode(9)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := eng.SetTxMode(TxBackoff); err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableTDMA(); err != nil {
		t.Fatal(err)
	}
	if eng.TransmitMode() != TxTDMA || len(eng.Frame()) == 0 {
		t.Fatal("EnableTDMA did not install a frame")
	}
	if err := eng.SetTxMode(TxTDMA); err != nil {
		t.Fatalf("TxTDMA with a frame: %v", err)
	}
	for _, m := range []TxMode{TxUnscheduled, TxBackoff, TxTDMA, TxMode(9)} {
		if m.String() == "" {
			t.Fatal("empty TxMode string")
		}
	}
}

func TestBroadcastModeCollisionsUnsupported(t *testing.T) {
	inst := starInstance(t, 4)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Broadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableTDMA(); err == nil {
		t.Fatal("EnableTDMA accepted in broadcast mode")
	}
	readings := randomReadings(rand.New(rand.NewSource(1)), inst.Net.Len())
	if _, err := eng.RunLossy(0, readings, chaos.New(1).WithCollisions(0), 2); err == nil {
		t.Fatal("collision faults accepted in broadcast mode")
	}
}

func TestCollisionAsyncMatchesLossy(t *testing.T) {
	// Same seed, same retry budget: both executors replay the same oracle,
	// so collision counts and per-message fates agree exactly.
	inst := starInstance(t, 6)
	readings := randomReadings(rand.New(rand.NewSource(7)), inst.Net.Len())
	for _, capture := range []float64{0, 0.5} {
		eng := collideEngine(t, inst)
		inj := chaos.New(19).WithCollisions(capture)
		lossy, err := eng.RunLossy(3, readings, inj, 3)
		if err != nil {
			t.Fatal(err)
		}
		async, err := eng.RunAsync(3, readings, inj, AsyncConfig{MaxRetries: 3})
		if err != nil {
			t.Fatal(err)
		}
		validateAll(t, async)
		if async.Collisions != lossy.Collisions {
			t.Fatalf("capture %v: async %d collisions, lossy %d", capture, async.Collisions, lossy.Collisions)
		}
		if async.Dropped != lossy.Dropped {
			t.Fatalf("capture %v: async dropped %d, lossy %d", capture, async.Dropped, lossy.Dropped)
		}
		for d, v := range lossy.Values {
			if async.Values[d] != v {
				t.Fatalf("capture %v: value at %d = %v, want %v", capture, d, async.Values[d], v)
			}
		}
	}
}
