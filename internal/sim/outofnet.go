package sim

import (
	"fmt"
	"sort"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

// OutOfNetworkResult reports one round of base-station-mediated control.
type OutOfNetworkResult struct {
	// Values holds every destination's aggregate, computed at the base.
	Values map[graph.NodeID]float64
	// EnergyJ is the round's total radio energy.
	EnergyJ float64
	// Messages counts physical messages (one per edge carrying units,
	// upstream and downstream combined).
	Messages int
	// PerNodeJ attributes energy per node; the nodes adjacent to the base
	// show the bottleneck the paper's introduction warns about.
	PerNodeJ map[graph.NodeID]float64
	// UpHops and DownHops are the total edge crossings toward and from
	// the base.
	UpHops, DownHops int
}

// OutOfNetwork executes the paper's strawman from the introduction: every
// source sends its raw reading to the base station, which evaluates all
// aggregation functions and unicasts each result back to its destination.
// Raw values travelling to the base share edges (one copy per edge) and
// messages are merged per edge, giving the approach its best case; the
// structural penalty — every byte crossing the neighborhood of the base,
// twice — remains.
func OutOfNetwork(net *graph.Undirected, specs []agg.Spec, model radio.Model, base graph.NodeID, readings map[graph.NodeID]float64) (*OutOfNetworkResult, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if int(base) < 0 || int(base) >= net.Len() {
		return nil, fmt.Errorf("sim: base station %d out of range", base)
	}
	bfs := net.BFS(base)

	// Upstream: raw values converge on the base along its BFS tree; each
	// edge carries each source's value once.
	upEdges := make(map[routing.Edge]map[graph.NodeID]bool)
	sources := make(map[graph.NodeID]bool)
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		for _, s := range sp.Func.Sources() {
			sources[s] = true
		}
	}
	var srcList []graph.NodeID
	for s := range sources {
		srcList = append(srcList, s)
	}
	sort.Slice(srcList, func(i, j int) bool { return srcList[i] < srcList[j] })
	for _, s := range srcList {
		if !bfs.Reachable(s) {
			return nil, fmt.Errorf("sim: source %d cannot reach base %d", s, base)
		}
		for v := s; v != base; {
			p := bfs.Parent[v]
			e := routing.Edge{From: v, To: p}
			if upEdges[e] == nil {
				upEdges[e] = make(map[graph.NodeID]bool)
			}
			upEdges[e][s] = true
			v = p
		}
	}

	// Downstream: one record unit per destination along the reverse tree
	// path; edges shared by several destinations merge into one message.
	downEdges := make(map[routing.Edge]map[graph.NodeID]bool)
	for _, sp := range specs {
		d := sp.Dest
		if !bfs.Reachable(d) {
			return nil, fmt.Errorf("sim: destination %d unreachable from base %d", d, base)
		}
		path := bfs.PathTo(d) // base .. d
		for i := 0; i+1 < len(path); i++ {
			e := routing.Edge{From: path[i], To: path[i+1]}
			if downEdges[e] == nil {
				downEdges[e] = make(map[graph.NodeID]bool)
			}
			downEdges[e][d] = true
		}
	}

	res := &OutOfNetworkResult{
		Values:   make(map[graph.NodeID]float64),
		PerNodeJ: make(map[graph.NodeID]float64),
	}
	charge := func(e routing.Edge, body int) {
		res.EnergyJ += model.UnicastJoules(body)
		res.PerNodeJ[e.From] += model.TxJoules(body)
		res.PerNodeJ[e.To] += model.RxJoules(body)
		res.Messages++
	}
	recordBytes := make(map[graph.NodeID]int, len(specs))
	for _, sp := range specs {
		recordBytes[sp.Dest] = agg.UnitBytes(sp.Func)
	}
	for e, srcs := range upEdges {
		charge(e, len(srcs)*agg.RawUnitBytes)
		res.UpHops += len(srcs)
	}
	for e, dests := range downEdges {
		body := 0
		for d := range dests {
			body += recordBytes[d]
		}
		charge(e, body)
		res.DownHops += len(dests)
	}

	// The base evaluates every function from the collected raw values.
	for _, sp := range specs {
		vals := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			vals[s] = readings[s]
		}
		v, err := agg.Eval(sp.Func, vals)
		if err != nil {
			return nil, err
		}
		res.Values[sp.Dest] = v
	}
	return res, nil
}
