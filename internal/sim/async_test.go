package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/chaos"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
)

func validateAll(t *testing.T, res *AsyncResult) {
	t.Helper()
	for d, rep := range res.Reports {
		if err := rep.Validate(); err != nil {
			t.Fatalf("dest %d report invalid: %v (report %+v)", d, err, rep)
		}
	}
}

// The anchoring invariant: with no faults at all, the event-driven round
// is byte-identical to Engine.Run — same values, same total and per-node
// energy, one transmission per planned message.
func TestAsyncFaultFreeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		inst := buildInstance(t, rng, 40, 6, 6, trial == 1)
		p, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		readings := randomReadings(rng, inst.Net.Len())
		plain, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		async, err := eng.RunAsync(trial, readings, nil, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if async.EnergyJ != plain.EnergyJ {
			t.Fatalf("trial %d: energy %v != %v", trial, async.EnergyJ, plain.EnergyJ)
		}
		if len(async.Values) != len(plain.Values) {
			t.Fatalf("trial %d: %d values, want %d", trial, len(async.Values), len(plain.Values))
		}
		for d, v := range plain.Values {
			if async.Values[d] != v {
				t.Fatalf("trial %d: value at %d = %v, want %v (bit-exact)", trial, d, async.Values[d], v)
			}
		}
		for n, j := range plain.PerNodeJ {
			if async.PerNodeJ[n] != j {
				t.Fatalf("trial %d: per-node energy at %d differs", trial, n)
			}
		}
		if async.Transmissions != plain.Messages || async.Retries != 0 || async.Dropped != 0 {
			t.Fatalf("trial %d: tx=%d retries=%d dropped=%d, want %d/0/0",
				trial, async.Transmissions, async.Retries, async.Dropped, plain.Messages)
		}
		if async.DupCopies != 0 || async.SpuriousTx != 0 || async.DeadlineClosed != 0 {
			t.Fatalf("trial %d: dup=%d spurious=%d deadline=%d on a fault-free run",
				trial, async.DupCopies, async.SpuriousTx, async.DeadlineClosed)
		}
		if async.MakespanMS <= 0 {
			t.Fatalf("trial %d: makespan %v, want > 0 (serialization takes time)", trial, async.MakespanMS)
		}
		for d, rep := range async.Reports {
			if !rep.Fresh || rep.Starved || rep.DeadlineHit || rep.AgeRounds != 0 {
				t.Fatalf("trial %d: dest %d not cleanly fresh: %+v", trial, d, rep)
			}
		}
		validateAll(t, async)
	}
}

// Jitter alone delays deliveries but loses nothing: values and energy must
// still match the synchronous round exactly (no spurious retransmissions
// at these latencies), and the makespan stretches.
func TestAsyncJitterOnlyMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(5).WithJitter(2, 20)
	async, err := eng.RunAsync(0, readings, inj, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range plain.Values {
		if async.Values[d] != v {
			t.Fatalf("value at %d = %v, want %v", d, async.Values[d], v)
		}
	}
	if async.EnergyJ != plain.EnergyJ {
		t.Fatalf("jitter changed energy: %v != %v", async.EnergyJ, plain.EnergyJ)
	}
	if async.Retries != 0 || async.SpuriousTx != 0 {
		t.Fatalf("retries=%d spurious=%d under loss-free jitter below the RTO", async.Retries, async.SpuriousTx)
	}
	validateAll(t, async)
}

// Duplication and reordering may change timing and energy, never values:
// a seeded run with both enabled (and no loss) delivers exactly the
// loss-free values. Per-unit messages (MergeMessages off) put several
// sequenced messages on each edge, so tag inversions are actually
// observable.
func TestAsyncDupReorderValuesUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: false})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	sawDup, sawReorder := false, false
	for seed := int64(0); seed < 5; seed++ {
		inj := chaos.New(seed).WithJitter(1, 40).WithDuplication(0.3).WithReorder(0.3, 60)
		async, err := eng.RunAsync(int(seed), readings, inj, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(async.Values) != len(plain.Values) {
			t.Fatalf("seed %d: %d values, want %d", seed, len(async.Values), len(plain.Values))
		}
		for d, v := range plain.Values {
			if async.Values[d] != v {
				t.Fatalf("seed %d: duplication/reordering changed value at %d: %v != %v",
					seed, d, async.Values[d], v)
			}
		}
		if async.EnergyJ < plain.EnergyJ {
			t.Fatalf("seed %d: energy %v below the loss-free floor %v", seed, async.EnergyJ, plain.EnergyJ)
		}
		if async.DupCopies > 0 {
			sawDup = true
		}
		if async.Reordered > 0 {
			sawReorder = true
		}
		for _, rep := range async.Reports {
			if !rep.Fresh {
				t.Fatalf("seed %d: dest %d not fresh under loss-free channel: %+v", seed, rep.Dest, rep)
			}
		}
		validateAll(t, async)
	}
	if !sawDup {
		t.Error("30% duplication never produced a duplicate copy across 5 seeds")
	}
	if !sawReorder {
		t.Error("jitter + reorder never inverted a tag across 5 seeds")
	}
}

// Under real loss the adaptive ARQ retransmits, fresh destinations still
// get exact values, and the RTT estimators converge on links that carried
// unambiguous samples.
func TestAsyncAdaptiveRetryUnderLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst := buildInstance(t, rng, 40, 6, 6, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewAsyncRunner(eng, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(9).WithUniformLoss(0.3).WithJitter(2, 10)
	totalRetries := 0
	for r := 0; r < 5; r++ {
		res, err := runner.Run(r, readings, inj)
		if err != nil {
			t.Fatal(err)
		}
		totalRetries += res.Retries
		for d, rep := range res.Reports {
			if rep.Fresh && res.Values[d] != plain.Values[d] {
				t.Fatalf("round %d: fresh dest %d value %v, want %v", r, d, res.Values[d], plain.Values[d])
			}
		}
		validateAll(t, res)
	}
	if totalRetries == 0 {
		t.Error("30% loss never forced a retransmission across 5 rounds")
	}
	converged := 0
	for _, est := range runner.rtt {
		if est.valid {
			converged++
			if est.srtt <= 0 || est.srtt > 100 {
				t.Errorf("srtt %v outside the plausible 0–100ms band", est.srtt)
			}
		}
	}
	if converged == 0 {
		t.Error("no link ever collected an RTT sample")
	}
}

// An RTT far above the initial RTO forces spurious retransmissions; the
// (epoch, seq) dedup window absorbs the duplicate arrivals, so values are
// untouched while SpuriousTx and DupCopies record the waste.
func TestAsyncSpuriousRetransmitDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	inst := buildInstance(t, rng, 30, 4, 4, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	plain, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(3).WithJitter(150, 0) // constant 150ms: RTT ≈ 300ms > 200ms RTO
	async, err := eng.RunAsync(0, readings, inj, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if async.SpuriousTx == 0 || async.DupCopies == 0 {
		t.Fatalf("spurious=%d dup=%d, want both > 0 when RTT exceeds the RTO", async.SpuriousTx, async.DupCopies)
	}
	for d, v := range plain.Values {
		if async.Values[d] != v {
			t.Fatalf("spurious retransmission changed value at %d: %v != %v", d, async.Values[d], v)
		}
	}
	if async.EnergyJ <= plain.EnergyJ {
		t.Fatalf("energy %v not above the loss-free floor %v despite duplicates", async.EnergyJ, plain.EnergyJ)
	}
	validateAll(t, async)
}

// slowEdge is a test schedule: everything delivers, but from round 1 on
// one edge takes an eternity.
type slowEdge struct {
	edge routing.Edge
	ms   float64
}

func (slowEdge) NodeDead(int, graph.NodeID) bool       { return false }
func (slowEdge) Deliver(int, routing.Edge, int) bool   { return true }
func (slowEdge) Duplicates(int, routing.Edge, int) int { return 0 }
func (s slowEdge) LatencyMS(round int, e routing.Edge, _, _ int) float64 {
	if round >= 1 && e == s.edge {
		return s.ms
	}
	return 0
}

// A destination behind a slow link closes its round at the deadline and
// degrades gracefully: partial (or no) coverage, DeadlineHit, and the
// last-known value from the cache with its staleness age.
func TestAsyncDeadlineGracefulDegradation(t *testing.T) {
	inst := lineInstance(t, 5, []graph.NodeID{0, 1})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewAsyncRunner(eng, AsyncConfig{DeadlineMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 3, 2: 0, 3: 0, 4: 0}
	faults := slowEdge{edge: routing.Edge{From: 2, To: 3}, ms: 10000}

	// Round 0: fast everywhere — dest 4 is served fresh, seeding the cache.
	r0, err := runner.Run(0, readings, faults)
	if err != nil {
		t.Fatal(err)
	}
	rep0 := r0.Reports[4]
	if rep0 == nil || !rep0.Fresh || r0.Values[4] != 8 {
		t.Fatalf("round 0: report %+v value %v, want fresh 8", rep0, r0.Values[4])
	}
	validateAll(t, r0)

	// Round 1: the 2→3 link slows to 10s against a 500ms deadline.
	r1, err := runner.Run(1, readings, faults)
	if err != nil {
		t.Fatal(err)
	}
	rep1 := r1.Reports[4]
	if rep1 == nil || rep1.Fresh {
		t.Fatalf("round 1: report %+v, want degraded", rep1)
	}
	if !rep1.DeadlineHit || rep1.ClosedAtMS != 500 {
		t.Fatalf("round 1: DeadlineHit=%v ClosedAtMS=%v, want true/500", rep1.DeadlineHit, rep1.ClosedAtMS)
	}
	if !rep1.HasLastKnown || rep1.LastKnown != 8 || rep1.AgeRounds != 1 {
		t.Fatalf("round 1: cache %+v, want last-known 8 aged 1 round", rep1)
	}
	if r1.DeadlineClosed != 1 {
		t.Fatalf("round 1: DeadlineClosed = %d, want 1", r1.DeadlineClosed)
	}
	// The slow delivery still lands after the deadline: energy is charged
	// and the makespan shows it, but the closed round's value is fixed.
	if r1.MakespanMS < 10000 {
		t.Fatalf("round 1: makespan %v, want ≥ the slow delivery", r1.MakespanMS)
	}
	if r1.Dropped != 0 {
		t.Fatalf("round 1: %d dropped — nothing was lost, only late", r1.Dropped)
	}
	validateAll(t, r1)

	// Round 2: still slow — the age keeps growing.
	r2, err := runner.Run(2, readings, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r2.Reports[4]; rep == nil || rep.AgeRounds != 2 || !rep.HasLastKnown {
		t.Fatalf("round 2: report %+v, want age 2 with cache intact", r2.Reports[4])
	}
	validateAll(t, r2)
}

func TestRTTEstimator(t *testing.T) {
	var est rttEstimator
	cfg := AsyncConfig{}.withDefaults()
	if got := est.rto(cfg); got != cfg.InitialRTOMS {
		t.Fatalf("unseeded rto = %v, want initial %v", got, cfg.InitialRTOMS)
	}
	est.observe(100)
	if est.srtt != 100 || est.rttvar != 50 {
		t.Fatalf("first sample: srtt=%v rttvar=%v, want 100/50", est.srtt, est.rttvar)
	}
	if got := est.rto(cfg); got != 300 {
		t.Fatalf("rto after first sample = %v, want srtt+4·rttvar = 300", got)
	}
	// Repeated identical samples: variance decays, srtt stays.
	for i := 0; i < 100; i++ {
		est.observe(100)
	}
	if math.Abs(est.srtt-100) > 1e-6 || est.rttvar > 1e-3 {
		t.Fatalf("converged srtt=%v rttvar=%v, want 100/≈0", est.srtt, est.rttvar)
	}
	if got := est.rto(cfg); math.Abs(got-100) > 1e-3 {
		t.Fatalf("converged rto = %v, want ≈ srtt with vanished variance", got)
	}
	// A latency spike inflates variance and with it the timeout.
	est.observe(500)
	if est.rto(cfg) < 140 {
		t.Fatalf("rto after spike = %v, want variance-inflated", est.rto(cfg))
	}
}

func TestAsyncConfigValidate(t *testing.T) {
	if err := (AsyncConfig{DeadlineMS: -1}).Validate(); err == nil {
		t.Error("negative deadline accepted")
	}
	if err := (AsyncConfig{MinRTOMS: 50, MaxRTOMS: 10}).Validate(); err == nil {
		t.Error("inverted RTO bounds accepted")
	}
	if err := (AsyncConfig{ByteTimeMS: -1}).Validate(); err == nil {
		t.Error("negative byte time accepted")
	}
	if err := (AsyncConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// Crashes behave like the synchronous executor's: a dead sender is silent
// (implicating itself), a dead destination reports dead-and-starved.
func TestAsyncCrashedNodes(t *testing.T) {
	inst := lineInstance(t, 4, []graph.NodeID{0, 2})
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 5, 1: 0, 2: 7, 3: 0}
	inj := chaos.New(1).Crash(0, 0)
	res, err := eng.RunAsync(0, readings, inj, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reports[3]
	if rep == nil || rep.Fresh || rep.Starved {
		t.Fatalf("report = %+v, want stale partial", rep)
	}
	if len(rep.Covered) != 1 || rep.Covered[0] != 2 || res.Values[3] != 7 {
		t.Fatalf("covered %v value %v, want [2] and 7", rep.Covered, res.Values[3])
	}
	silent := false
	for _, o := range res.Outcomes {
		if o.Edge.From == 0 && o.Attempts == 0 {
			silent = true
		}
	}
	if !silent {
		t.Error("dead sender transmitted")
	}
	validateAll(t, res)

	// Dead destination.
	dinj := chaos.New(1).Crash(3, 0)
	dres, err := eng.RunAsync(0, readings, dinj, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	drep := dres.Reports[3]
	if drep == nil || !drep.DestDead || !drep.Starved || len(drep.Missing) != 2 {
		t.Fatalf("dead dest report = %+v", drep)
	}
	validateAll(t, dres)
}
