package sim

import (
	"fmt"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/routing"
)

// This file compiles a plan into a flat, index-based round program at
// NewEngine time. Every (node, source) raw value and every (node, dest)
// partial record the plan can ever hold is interned into a dense slot id,
// and every message unit becomes a unitOp: a raw copy between two slots,
// or a record assembly whose operand list replays the map-based reference
// executor's merge sequence exactly. Repeated rounds then run over
// contiguous scratch arrays (RoundState) with no map lookups and no heap
// allocations, and — because the compiled program is immutable after
// construction — arbitrarily many rounds may execute concurrently over
// one Engine (RunConcurrent).
//
// The presence checks the reference executor performs at run time are
// discharged statically here: compile replays the processing order over
// presence bits once and proves every read is preceded by a write, so the
// fault-free hot loop carries no conditionals. The lossy executors reuse
// the same program but track presence dynamically, since faults make
// delivery — and therefore slot occupancy — a runtime property.

// inputKind distinguishes the two operand types of a record assembly.
type inputKind int8

const (
	inRaw inputKind = iota // pre-aggregate a raw value slot
	inRec                  // fold the node's accumulated upstream record
)

// unitInput is one operand of a compiled record assembly, in the exact
// order the reference executor merges them.
type unitInput struct {
	kind   inputKind
	slot   int32        // raw slot (inRaw) or record slot (inRec)
	source graph.NodeID // inRaw: the source whose reading the slot holds
	srcBit int32        // inRaw: dense source index, for coverage bitsets
}

// unitOp is the compiled form of one message unit, indexed by unit index.
type unitOp struct {
	kind plan.UnitKind

	// UnitRaw: copy raw slot from -> to.
	from, to int32

	// UnitAgg: assemble inputs, fold into record slot out.
	inputs   []unitInput
	out      int32
	outMerge bool // out already holds a record when this op runs (static)
	fn       agg.Func
	ip       agg.InPlace // fn's in-place extension, nil if unsupported
	fnLen    int32
	dest     graph.NodeID
}

// finalOp is the compiled final merge and evaluation at one destination.
type finalOp struct {
	dest    graph.NodeID
	fn      agg.Func
	ip      agg.InPlace
	fnLen   int32
	inputs  []unitInput
	sources []graph.NodeID // fn.Sources(), ascending
	srcBits []int32        // dense source index of each entry of sources
}

// compiled is the flat round program shared by every execution path.
type compiled struct {
	nRaw int // raw value slots: dense (node, source) ids
	nRec int // partial record slots: dense (node, dest) ids

	recOff []int32       // record slot -> offset into the record arena
	recLen []int32       // record slot -> record arity
	recFn  []agg.Func    // record slot -> its destination's function
	recIP  []agg.InPlace // record slot -> fn's in-place extension (nil if none)
	arena  int           // total arena length (float64 slots)
	maxRec int           // widest record (assembly scratch size)

	srcIDs  []graph.NodeID // sources, ascending (dense source index order)
	srcSlot []int32        // dense source index -> raw slot of (s, s)

	ops       []unitOp // indexed by unit index
	unitBytes []int32  // indexed by unit index: on-wire payload bytes
	finals    []finalOp
	finalOf   map[graph.NodeID]int32 // destination -> index into finals

	msgEdge   []int32 // message index -> dense id of its carrying edge
	nMsgEdges int
	edgeFrom  []graph.NodeID // dense edge id -> endpoints, for epoch fencing
	edgeTo    []graph.NodeID

	covWords int // words per coverage bitset: ceil(len(srcIDs)/64)
}

// inPlaceOf returns f's in-place extension, or nil.
func inPlaceOf(f agg.Func) agg.InPlace {
	ip, _ := f.(agg.InPlace)
	return ip
}

// compile builds the flat round program. It must run after orderMessages
// (the processing order is final) and fails with the reference executor's
// error for any plan whose reads are not covered by writes — turning the
// old per-round runtime checks into one construction-time proof.
func (e *Engine) compile() error {
	inst := e.Plan.Inst
	c := &compiled{}

	rawSlots := make(map[nodeSource]int32)
	rawSlot := func(n, s graph.NodeID) int32 {
		k := nodeSource{node: n, source: s}
		id, ok := rawSlots[k]
		if !ok {
			id = int32(c.nRaw)
			c.nRaw++
			rawSlots[k] = id
		}
		return id
	}
	recSlots := make(map[nodeDest]int32)
	recSlot := func(n, d graph.NodeID) int32 {
		k := nodeDest{node: n, dest: d}
		id, ok := recSlots[k]
		if !ok {
			id = int32(c.nRec)
			c.nRec++
			recSlots[k] = id
			f := inst.SpecByDest[d].Func
			l := int32(agg.RecordLen(f))
			c.recLen = append(c.recLen, l)
			c.recFn = append(c.recFn, f)
			c.recIP = append(c.recIP, inPlaceOf(f))
			c.recOff = append(c.recOff, int32(c.arena))
			c.arena += int(l)
			if int(l) > c.maxRec {
				c.maxRec = int(l)
			}
		}
		return id
	}

	// The assembly scratch must fit every destination's record, including
	// destinations whose contributions all arrive raw (no record slot).
	for _, sp := range inst.SpecByDest {
		if l := agg.RecordLen(sp.Func); l > c.maxRec {
			c.maxRec = l
		}
	}

	c.srcIDs = inst.Sources()
	srcBit := make(map[graph.NodeID]int32, len(c.srcIDs))
	c.srcSlot = make([]int32, len(c.srcIDs))
	for i, s := range c.srcIDs {
		srcBit[s] = int32(i)
		c.srcSlot[i] = rawSlot(s, s)
	}
	c.covWords = (len(c.srcIDs) + 63) / 64

	// compileInputs mirrors assembleRecord's pair walk: the contributions
	// of destination d at node n, for the record crossing out (or the
	// final merge when out is the zero edge), in reference merge order.
	// The upstream record is folded once, at the first record-form pair.
	compileInputs := func(n, d graph.NodeID, out routing.Edge) ([]unitInput, error) {
		f := inst.SpecByDest[d].Func
		final := out == routing.Edge{}
		var pairs []plan.Pair
		if final {
			for _, s := range f.Sources() {
				pairs = append(pairs, plan.Pair{Source: s, Dest: d})
			}
		} else {
			for _, pr := range inst.EdgePairs[out] {
				if pr.Dest == d {
					pairs = append(pairs, pr)
				}
			}
		}
		var inputs []unitInput
		usedUpstream := false
		for _, pr := range pairs {
			path := inst.Paths[pr]
			var pos int
			if final {
				pos = len(path) - 1
			} else {
				pos = inst.PairEdgeIndex(pr, out)
				if pos < 0 {
					return nil, fmt.Errorf("sim: pair %d→%d does not cross %v", pr.Source, pr.Dest, out)
				}
			}
			if pos == 0 {
				inputs = append(inputs, unitInput{kind: inRaw, slot: rawSlot(n, pr.Source), source: pr.Source, srcBit: srcBit[pr.Source]})
				continue
			}
			in := routing.Edge{From: path[pos-1], To: path[pos]}
			if e.Plan.Sol[in].Agg[d] {
				if !usedUpstream {
					usedUpstream = true
					inputs = append(inputs, unitInput{kind: inRec, slot: recSlot(n, d)})
				}
				continue
			}
			inputs = append(inputs, unitInput{kind: inRaw, slot: rawSlot(n, pr.Source), source: pr.Source, srcBit: srcBit[pr.Source]})
		}
		if len(inputs) == 0 {
			return nil, fmt.Errorf("sim: empty record for %d at %d", d, n)
		}
		return inputs, nil
	}

	c.ops = make([]unitOp, len(e.units))
	c.unitBytes = make([]int32, len(e.units))
	for i, u := range e.units {
		c.unitBytes[i] = int32(e.Plan.Bytes(u))
		if u.Kind == plan.UnitRaw {
			c.ops[i] = unitOp{kind: plan.UnitRaw, from: rawSlot(u.Edge.From, u.Node), to: rawSlot(u.Edge.To, u.Node)}
			continue
		}
		inputs, err := compileInputs(u.Edge.From, u.Node, u.Edge)
		if err != nil {
			return err
		}
		f := inst.SpecByDest[u.Node].Func
		c.ops[i] = unitOp{
			kind:   plan.UnitAgg,
			inputs: inputs,
			out:    recSlot(u.Edge.To, u.Node),
			fn:     f,
			ip:     inPlaceOf(f),
			fnLen:  int32(agg.RecordLen(f)),
			dest:   u.Node,
		}
	}
	for _, d := range inst.Dests() {
		inputs, err := compileInputs(d, d, routing.Edge{})
		if err != nil {
			return err
		}
		f := inst.SpecByDest[d].Func
		fo := finalOp{
			dest:    d,
			fn:      f,
			ip:      inPlaceOf(f),
			fnLen:   int32(agg.RecordLen(f)),
			inputs:  inputs,
			sources: f.Sources(),
		}
		fo.srcBits = make([]int32, len(fo.sources))
		for i, s := range fo.sources {
			fo.srcBits[i] = srcBit[s]
		}
		c.finals = append(c.finals, fo)
	}
	c.finalOf = make(map[graph.NodeID]int32, len(c.finals))
	for i := range c.finals {
		c.finalOf[c.finals[i].dest] = int32(i)
	}

	// Dense ids for the edges the message layout uses, so per-round ARQ
	// attempt counters and receive windows index arrays instead of maps.
	c.msgEdge = make([]int32, len(e.messages))
	edgeID := make(map[routing.Edge]int32)
	for mi, msg := range e.messages {
		if len(msg) == 0 {
			// Broadcast-mode placeholder messages carry no units (and the
			// lossy executors reject broadcast engines upstream).
			c.msgEdge[mi] = -1
			continue
		}
		edge := e.units[msg[0]].Edge
		id, ok := edgeID[edge]
		if !ok {
			id = int32(c.nMsgEdges)
			c.nMsgEdges++
			edgeID[edge] = id
			c.edgeFrom = append(c.edgeFrom, edge.From)
			c.edgeTo = append(c.edgeTo, edge.To)
		}
		c.msgEdge[mi] = id
	}

	// Static verification: replay the processing order over presence bits,
	// proving every read follows a write (so the fault-free executor skips
	// runtime checks) and fixing each fold's copy-vs-merge decision.
	rawSet := make([]bool, c.nRaw)
	recSet := make([]bool, c.nRec)
	for _, slot := range c.srcSlot {
		rawSet[slot] = true
	}
	checkInputs := func(n, d graph.NodeID, inputs []unitInput) error {
		for _, in := range inputs {
			switch in.kind {
			case inRaw:
				if !rawSet[in.slot] {
					if in.source == n {
						return fmt.Errorf("sim: local reading of %d missing", in.source)
					}
					return fmt.Errorf("sim: raw %d missing at %d for record %d", in.source, n, d)
				}
			case inRec:
				if !recSet[in.slot] {
					return fmt.Errorf("sim: record for %d missing at %d", d, n)
				}
			}
		}
		return nil
	}
	for _, idx := range e.order {
		op := &c.ops[idx]
		if op.kind == plan.UnitRaw {
			u := e.units[idx]
			if !rawSet[op.from] {
				return fmt.Errorf("sim: raw %d missing at %d", u.Node, u.Edge.From)
			}
			rawSet[op.to] = true
			continue
		}
		u := e.units[idx]
		if err := checkInputs(u.Edge.From, u.Node, op.inputs); err != nil {
			return err
		}
		op.outMerge = recSet[op.out]
		recSet[op.out] = true
	}
	for i := range c.finals {
		fo := &c.finals[i]
		if err := checkInputs(fo.dest, fo.dest, fo.inputs); err != nil {
			return err
		}
	}
	e.prog = c
	return nil
}

// covBit sets bit i of the coverage bitset.
func covSetBit(cov []uint64, i int32) { cov[i>>6] |= 1 << uint(i&63) }

// covHasBit reports whether bit i is set.
func covHasBit(cov []uint64, i int32) bool { return cov[i>>6]&(1<<uint(i&63)) != 0 }

// covOr folds src into dst.
func covOr(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// covClear zeroes the bitset.
func covClear(cov []uint64) {
	for i := range cov {
		cov[i] = 0
	}
}
