package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
)

func TestFlexibleDeltaValuesStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inst := linearInstance(t, rng, 40, 8, 8)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{PolicyConservative, PolicyMedium, PolicyAggressive} {
		sup, err := NewSuppressorFlexible(p, radio.DefaultModel(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if !sup.Flexible {
			t.Fatal("flexible flag not set")
		}
		for trial := 0; trial < 10; trial++ {
			deltas := make(map[graph.NodeID]float64)
			for n := 0; n < inst.Net.Len(); n++ {
				if rng.Float64() < 0.25 {
					deltas[graph.NodeID(n)] = rng.NormFloat64()
				}
			}
			res, err := sup.Round(deltas)
			if err != nil {
				t.Fatalf("policy %v: %v", pol, err)
			}
			// Exactness of delta maintenance (the Round self-check already
			// verified coverage; this verifies the value algebra).
			for _, sp := range inst.Specs {
				wf := sp.Func.(interface{ Weight(graph.NodeID) float64 })
				want, any := 0.0, false
				for _, s := range sp.Func.Sources() {
					if dv, ok := deltas[s]; ok {
						want += wf.Weight(s) * dv
						any = true
					}
				}
				got, present := res.DeltaValues[sp.Dest]
				if any != present || (any && math.Abs(got-want) > 1e-9*(1+math.Abs(want))) {
					t.Fatalf("policy %v: delta at %d = %v (present=%v), want %v", pol, sp.Dest, got, present, want)
				}
			}
		}
	}
}

func TestFlexibleNeverWorseThanDefaultOverride(t *testing.T) {
	// Re-folding downstream can only recover aggregation opportunities the
	// default override mode forfeits; across many rounds the flexible mode
	// must not spend more energy on average.
	rng := rand.New(rand.NewSource(72))
	inst := linearInstance(t, rng, 45, 10, 10)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewSuppressor(p, radio.DefaultModel(), PolicyAggressive)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := NewSuppressorFlexible(p, radio.DefaultModel(), PolicyAggressive)
	if err != nil {
		t.Fatal(err)
	}
	var eDef, eFlex float64
	for round := 0; round < 50; round++ {
		deltas := make(map[graph.NodeID]float64)
		for n := 0; n < inst.Net.Len(); n++ {
			if rng.Float64() < 0.2 {
				deltas[graph.NodeID(n)] = rng.NormFloat64()
			}
		}
		rd, err := def.Round(deltas)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := flex.Round(deltas)
		if err != nil {
			t.Fatal(err)
		}
		eDef += rd.EnergyJ
		eFlex += rf.EnergyJ
	}
	if eFlex > eDef*1.01 {
		t.Errorf("flexible mode %v J worse than default %v J", eFlex, eDef)
	}
}

func TestFlexibleExtraState(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	inst := linearInstance(t, rng, 40, 8, 8)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSuppressorFlexible(p, radio.DefaultModel(), PolicyMedium)
	if err != nil {
		t.Fatal(err)
	}
	extra := sup.ExtraStateEntries()
	if extra < 0 {
		t.Fatalf("negative extra state %d", extra)
	}
	// Upper bound: strictly fewer than total path-node slots.
	limit := 0
	for pr, path := range inst.Paths {
		_ = pr
		limit += len(path)
	}
	if extra >= limit {
		t.Errorf("extra state %d exceeds path-node total %d", extra, limit)
	}
}

func TestFlexibleIdenticalWithPolicyNone(t *testing.T) {
	// Without overrides the two modes are the same machine.
	rng := rand.New(rand.NewSource(74))
	inst := linearInstance(t, rng, 30, 5, 5)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSuppressor(p, radio.DefaultModel(), PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuppressorFlexible(p, radio.DefaultModel(), PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[graph.NodeID]float64{inst.Sources()[0]: 1.5, inst.Sources()[1]: -2}
	ra, err := a.Round(deltas)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Round(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if ra.EnergyJ != rb.EnergyJ || ra.Messages != rb.Messages ||
		ra.RawUnits != rb.RawUnits || ra.RecordUnits != rb.RecordUnits {
		t.Errorf("modes differ without overrides: %+v vs %+v", ra, rb)
	}
}
