package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
)

// RoundState is the recyclable scratch of one compiled round: the raw
// value slots, the partial record arena, the two assembly buffers, and a
// reusable result. A state belongs to at most one in-flight round at a
// time; Engine.Run recycles states through an internal sync.Pool, so
// steady-state execution performs no per-round heap allocations.
type RoundState struct {
	raw   []float64 // raw value slots
	arena []float64 // partial record arena (record slots side by side)
	tmp   []float64 // record assembly accumulator
	tmp2  []float64 // pre-aggregation operand buffer
	res   RoundResult
}

// NewRoundState returns a fresh scratch sized for the engine's compiled
// program. States are engine-specific; using one with another engine is
// undefined.
func (e *Engine) NewRoundState() *RoundState {
	c := e.prog
	return &RoundState{
		raw:   make([]float64, c.nRaw),
		arena: make([]float64, c.arena),
		tmp:   make([]float64, c.maxRec),
		tmp2:  make([]float64, c.maxRec),
		res:   RoundResult{Values: make(map[graph.NodeID]float64, len(c.finals))},
	}
}

func (e *Engine) getState() *RoundState   { return e.pool.Get().(*RoundState) }
func (e *Engine) putState(st *RoundState) { e.pool.Put(st) }

// assembleInto replays one compiled operand list into tmp: the first
// operand is written, the rest folded with the function's merge — the
// exact sequence (and therefore the exact floats) of the reference
// executor's assembleRecord. Presence was proven at compile time, so
// there are no runtime checks.
func assembleInto(fn agg.Func, ip agg.InPlace, inputs []unitInput, st *RoundState, c *compiled, tmp agg.Record) {
	for i, in := range inputs {
		if in.kind == inRec {
			rec := st.arena[c.recOff[in.slot] : c.recOff[in.slot]+c.recLen[in.slot]]
			if i == 0 {
				copy(tmp, rec)
			} else if ip != nil {
				ip.MergeInto(tmp, rec)
			} else {
				copy(tmp, fn.Merge(tmp, rec))
			}
			continue
		}
		v := st.raw[in.slot]
		if i == 0 {
			if ip != nil {
				ip.PreAggInto(tmp, in.source, v)
			} else {
				copy(tmp, fn.PreAgg(in.source, v))
			}
			continue
		}
		op := st.tmp2[:len(tmp)]
		if ip != nil {
			ip.PreAggInto(op, in.source, v)
			ip.MergeInto(tmp, op)
		} else {
			copy(op, fn.PreAgg(in.source, v))
			copy(tmp, fn.Merge(tmp, op))
		}
	}
}

// runCompiled executes one round of the compiled program over st, writing
// each destination's aggregate into values. With a nil observer it is
// allocation-free.
func (e *Engine) runCompiled(round int, readings map[graph.NodeID]float64, st *RoundState, values map[graph.NodeID]float64, obs Observer) {
	c := e.prog
	if adv := e.adversary; adv != nil {
		// Corruption happens here, at the source's own fill slot, so every
		// downstream forward and merge carries the poisoned value.
		for i, slot := range c.srcSlot {
			id := c.srcIDs[i]
			st.raw[slot] = adv.CorruptReading(round, id, readings[id])
		}
	} else {
		for i, slot := range c.srcSlot {
			st.raw[slot] = readings[c.srcIDs[i]]
		}
	}
	for _, idx := range e.order {
		op := &c.ops[idx]
		if op.kind == plan.UnitRaw {
			v := st.raw[op.from]
			st.raw[op.to] = v
			if obs != nil {
				obs(e.units[idx], v, nil)
			}
			continue
		}
		tmp := st.tmp[:op.fnLen]
		assembleInto(op.fn, op.ip, op.inputs, st, c, tmp)
		if obs != nil {
			obs(e.units[idx], 0, append(agg.Record(nil), tmp...))
		}
		out := st.arena[c.recOff[op.out] : c.recOff[op.out]+op.fnLen]
		if !op.outMerge {
			copy(out, tmp)
		} else if op.ip != nil {
			op.ip.MergeInto(out, tmp)
		} else {
			copy(out, op.fn.Merge(out, tmp))
		}
	}
	for i := range c.finals {
		fo := &c.finals[i]
		tmp := st.tmp[:fo.fnLen]
		assembleInto(fo.fn, fo.ip, fo.inputs, st, c, tmp)
		values[fo.dest] = fo.fn.Eval(tmp)
	}
}

// fillResult stamps the engine's precomputed round constants into res.
func (e *Engine) fillResult(res *RoundResult) {
	res.EnergyJ = e.energyJ
	res.Messages = len(e.messages)
	res.Units = len(e.units)
	res.BodyBytes = e.bodyBytes
	res.OnAirBytes = e.bodyBytes + len(e.messages)*e.Radio.HeaderBytes
	res.PerNodeJ = e.perNodeJ
}

// RunInto executes one round into the caller-held state and returns its
// embedded result. The result — including its Values map — is owned by
// st and overwritten by the next RunInto on the same state: callers that
// keep a value across rounds must copy it. Steady-state RunInto performs
// zero heap allocations.
func (e *Engine) RunInto(readings map[graph.NodeID]float64, st *RoundState) (*RoundResult, error) {
	e.runCompiled(e.nextAdvRound(), readings, st, st.res.Values, nil)
	e.fillResult(&st.res)
	e.drainStatic()
	return &st.res, nil
}

// RunConcurrent executes len(batch) independent rounds over the shared
// compiled program with a pool of worker goroutines (workers <= 0 selects
// GOMAXPROCS). The program is immutable after NewEngine, so rounds only
// touch per-worker RoundStates; results[i] is batch[i]'s round, each with
// its own freshly allocated Values map.
//
// Cancellation is cooperative between rounds: once ctx is done the
// workers stop claiming new batch entries (the round in flight on each
// worker completes) and RunConcurrent returns ctx.Err() instead of
// results. With context.Background() the behavior — and every computed
// byte — is identical to the pre-context API.
func (e *Engine) RunConcurrent(ctx context.Context, batch []map[graph.NodeID]float64, workers int) ([]*RoundResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	results := make([]*RoundResult, len(batch))
	if len(batch) == 0 {
		return results, nil
	}
	// The whole batch claims a contiguous block of adversary rounds, so
	// batch[i] executes as round base+i however the workers interleave.
	base := e.reserveAdvRounds(len(batch))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := e.getState()
			defer e.putState(st)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				res := &RoundResult{Values: make(map[graph.NodeID]float64, len(e.prog.finals))}
				e.runCompiled(base+i, batch[i], st, res.Values, nil)
				e.fillResult(res)
				e.drainStatic()
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// lossyState is the recyclable scratch of the lossy and asynchronous
// executors: the compiled slot arrays plus dynamic presence flags and
// per-record coverage bitsets, since under faults slot occupancy is a
// runtime property.
type lossyState struct {
	raw     []float64
	rawSet  []bool
	arena   []float64
	recSet  []bool
	cov     []uint64 // nRec consecutive bitsets of covWords words
	tmp     []float64
	tmp2    []float64
	tmp3    []float64 // contribution-fold buffer of the async executor
	covTmp  []uint64
	attempt []int32      // per message-edge ARQ attempt sequence
	edgeOK  []bool       // per message-edge epoch fence (true = epochs match)
	raws    []carriedRaw // per-message payload snapshot scratch
	recs    []carriedRec
}

func (e *Engine) newLossyState() *lossyState {
	c := e.prog
	return &lossyState{
		raw:     make([]float64, c.nRaw),
		rawSet:  make([]bool, c.nRaw),
		arena:   make([]float64, c.arena),
		recSet:  make([]bool, c.nRec),
		cov:     make([]uint64, c.nRec*c.covWords),
		tmp:     make([]float64, c.maxRec),
		tmp2:    make([]float64, c.maxRec),
		tmp3:    make([]float64, c.maxRec),
		covTmp:  make([]uint64, c.covWords),
		attempt: make([]int32, c.nMsgEdges),
		edgeOK:  make([]bool, c.nMsgEdges),
	}
}

func (e *Engine) getLossyState() *lossyState {
	st := e.lossyPool.Get().(*lossyState)
	for i := range st.rawSet {
		st.rawSet[i] = false
	}
	for i := range st.recSet {
		st.recSet[i] = false
	}
	for i := range st.cov {
		st.cov[i] = 0
	}
	for i := range st.attempt {
		st.attempt[i] = 0
	}
	for i := range st.edgeOK {
		st.edgeOK[i] = true
	}
	st.raws = st.raws[:0]
	st.recs = st.recs[:0]
	return st
}

// fillEdgeFence evaluates the epoch fence over the interned message edges:
// an edge is open only when both endpoints run the executing plan's epoch.
// Schedules that carry no epoch view leave every edge open (the flags were
// reset true by getLossyState), so the fence costs nothing when unused.
func (e *Engine) fillEdgeFence(st *lossyState, faults Faults) {
	ep, ok := faults.(Epochs)
	if !ok {
		return
	}
	c := e.prog
	pe := ep.PlanEpoch()
	for i := 0; i < c.nMsgEdges; i++ {
		st.edgeOK[i] = ep.NodeEpoch(c.edgeFrom[i]) == pe && ep.NodeEpoch(c.edgeTo[i]) == pe
	}
}

func (e *Engine) putLossyState(st *lossyState) { e.lossyPool.Put(st) }

// mergeRecInto folds src into dst with fn's in-place extension when it has
// one, reproducing dst = fn.Merge(dst, src) bit for bit either way.
func mergeRecInto(fn agg.Func, ip agg.InPlace, dst, src agg.Record) {
	if ip != nil {
		ip.MergeInto(dst, src)
	} else {
		copy(dst, fn.Merge(dst, src))
	}
}

// recCov returns record slot s's coverage bitset.
func (st *lossyState) recCov(c *compiled, s int32) []uint64 {
	return st.cov[int(s)*c.covWords : (int(s)+1)*c.covWords]
}

// assembleLossyInto replays one compiled operand list under partial
// delivery: absent operands are skipped, covered sources are accumulated
// into covTmp, and the merge order over the present operands is exactly
// the reference executor's — which is what keeps fault-free rounds
// byte-identical to Run. It reports whether anything was present.
func assembleLossyInto(fn agg.Func, ip agg.InPlace, inputs []unitInput, st *lossyState, c *compiled, tmp agg.Record, covTmp []uint64) bool {
	covClear(covTmp)
	got := false
	mergeRec := func(rec agg.Record) {
		if !got {
			got = true
			copy(tmp, rec)
		} else if ip != nil {
			ip.MergeInto(tmp, rec)
		} else {
			copy(tmp, fn.Merge(tmp, rec))
		}
	}
	for _, in := range inputs {
		if in.kind == inRec {
			if !st.recSet[in.slot] {
				continue
			}
			mergeRec(st.arena[c.recOff[in.slot] : c.recOff[in.slot]+c.recLen[in.slot]])
			covOr(covTmp, st.recCov(c, in.slot))
			continue
		}
		if !st.rawSet[in.slot] {
			continue
		}
		v := st.raw[in.slot]
		if !got {
			got = true
			if ip != nil {
				ip.PreAggInto(tmp, in.source, v)
			} else {
				copy(tmp, fn.PreAgg(in.source, v))
			}
		} else {
			op := st.tmp2[:len(tmp)]
			if ip != nil {
				ip.PreAggInto(op, in.source, v)
				ip.MergeInto(tmp, op)
			} else {
				copy(op, fn.PreAgg(in.source, v))
				copy(tmp, fn.Merge(tmp, op))
			}
		}
		covSetBit(covTmp, in.srcBit)
	}
	return got
}
