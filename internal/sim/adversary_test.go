package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/chaos"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
	"m2m/internal/topology"
)

// buildSketchInstance is buildInstance with the sketch families mixed in:
// every destination cycles through q-digest median, HLL distinct count,
// and trimmed mean, so a round exercises all three record layouts.
func buildSketchInstance(t testing.TB, rng *rand.Rand, n, nDests, nSrcs int) *plan.Instance {
	t.Helper()
	l := topology.UniformRandom(n, topology.GreatDuckIsland().Area, rng.Int63())
	l.EnsureConnected(50)
	g := l.ConnectivityGraph(50)
	router := routing.NewReversePath(g)
	perm := rng.Perm(n)
	var specs []agg.Spec
	for i := 0; i < nDests && i < n; i++ {
		d := graph.NodeID(perm[i])
		srcSet := make(map[graph.NodeID]bool)
		for len(srcSet) < nSrcs {
			srcSet[graph.NodeID(rng.Intn(n))] = true
		}
		var srcs []graph.NodeID
		for s := range srcSet {
			srcs = append(srcs, s)
		}
		var f agg.Func
		var err error
		switch i % 3 {
		case 0:
			f, err = agg.NewQDigest(srcs, 6, -50, 50, 0.5)
		case 1:
			f, err = agg.NewHyperLogLog(srcs, 5)
		default:
			f, err = agg.NewTrimmedMean(srcs, 6, -50, 50, 0.25)
		}
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, agg.Spec{Dest: d, Func: f})
	}
	inst, err := plan.NewInstance(g, router, specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func bitsSame(t *testing.T, label string, got, want map[graph.NodeID]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for d, wv := range want {
		gv, ok := got[d]
		if !ok {
			t.Fatalf("%s: destination %d missing", label, d)
		}
		if math.Float64bits(gv) != math.Float64bits(wv) {
			t.Fatalf("%s: destination %d = %v (%x), want %v (%x)",
				label, d, gv, math.Float64bits(gv), wv, math.Float64bits(wv))
		}
	}
}

// TestSketchExecutorsByteIdentical is the zero-Byzantine differential
// gate of the acceptance criteria: with no adversary, sketch rounds —
// q-digest, HLL, trimmed mean — are byte-identical across the compiled,
// reusable-state, lossy, asynchronous, and concurrent executors and the
// map-based reference.
func TestSketchExecutorsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(616))
	for trial := 0; trial < 4; trial++ {
		n := 25 + rng.Intn(25)
		inst := buildSketchInstance(t, rng, n, 3+rng.Intn(3), 4+rng.Intn(4))
		p, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		readings := randomReadings(rng, n)

		want, err := eng.runMapBased(0, readings, nil)
		if err != nil {
			t.Fatalf("trial %d: runMapBased: %v", trial, err)
		}
		run, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		bitsSame(t, "Run", run.Values, want.Values)

		st := eng.NewRoundState()
		into, err := eng.RunInto(readings, st)
		if err != nil {
			t.Fatal(err)
		}
		bitsSame(t, "RunInto", into.Values, want.Values)

		lossy, err := eng.RunLossy(0, readings, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bitsSame(t, "RunLossy", lossy.Values, want.Values)
		for _, rep := range lossy.Reports {
			if !rep.Fresh {
				t.Fatalf("trial %d: fault-free lossy round not fresh at %d", trial, rep.Dest)
			}
		}

		runner, err := NewAsyncRunner(eng, AsyncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		async, err := runner.Run(0, readings, nil)
		if err != nil {
			t.Fatal(err)
		}
		bitsSame(t, "async", async.Values, want.Values)

		conc, err := eng.RunConcurrent(context.Background(), []map[graph.NodeID]float64{readings, readings}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range conc {
			bitsSame(t, "RunConcurrent", r.Values, want.Values)
		}
	}
}

// TestAdversaryCorruptsAtSource checks the injection boundary: a stuck
// node poisons exactly the destinations that source it, identically in
// every executor, whether the adversary arrives via Options.Adversary or
// asserted from the fault schedule.
func TestAdversaryCorruptsAtSource(t *testing.T) {
	rng := rand.New(rand.NewSource(1002))
	n := 30
	inst := buildInstance(t, rng, n, 4, 5, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, n)

	// Pick a source some destinations use and others do not.
	var victim graph.NodeID = -1
	uses := func(s graph.NodeID) (with, without []graph.NodeID) {
		for _, sp := range inst.Specs {
			if sp.Func.HasSource(s) {
				with = append(with, sp.Dest)
			} else {
				without = append(without, sp.Dest)
			}
		}
		return
	}
	var poisoned, clean []graph.NodeID
	for _, sp := range inst.Specs {
		for _, s := range sp.Func.Sources() {
			if w, wo := uses(s); len(w) > 0 && len(wo) > 0 {
				victim, poisoned, clean = s, w, wo
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no source splits the destinations")
	}

	// Stuck far below every honest N(0,10) reading, so the lie moves every
	// builtin family — including min, where a large lie could hide.
	inj := chaos.New(5).WithByzantine(victim, chaos.ByzStuck, -9999, 0, chaos.Forever)
	if err := inj.Validate(); err != nil {
		t.Fatal(err)
	}

	honest, err := func() (*RoundResult, error) {
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			return nil, err
		}
		return eng.Run(readings)
	}()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Adversary: inj})
	if err != nil {
		t.Fatal(err)
	}
	corrupted, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range poisoned {
		if math.Float64bits(corrupted.Values[d]) == math.Float64bits(honest.Values[d]) {
			t.Errorf("destination %d sourcing %d unchanged under corruption", d, victim)
		}
	}
	for _, d := range clean {
		if math.Float64bits(corrupted.Values[d]) != math.Float64bits(honest.Values[d]) {
			t.Errorf("destination %d does not source %d but moved: %v -> %v",
				d, victim, honest.Values[d], corrupted.Values[d])
		}
	}

	// The reference executor corrupts identically.
	ref, err := eng.runMapBased(0, readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	bitsSame(t, "runMapBased", ref.Values, corrupted.Values)

	// The lossy and async paths discover the same adversary from the
	// fault schedule alone (no Options.Adversary) and corrupt identically
	// on a fault-free round.
	plainEng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := plainEng.RunLossy(0, readings, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	bitsSame(t, "RunLossy(faults)", lossy.Values, corrupted.Values)
	runner, err := NewAsyncRunner(plainEng, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	async, err := runner.Run(0, readings, inj)
	if err != nil {
		t.Fatal(err)
	}
	bitsSame(t, "async(faults)", async.Values, corrupted.Values)
}

// TestAdversaryRoundCounter checks that the fault-free executors feed
// the adversary a monotonically advancing round: an offset-drift window
// must produce a different lie every Run.
func TestAdversaryRoundCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 20
	inst := buildInstance(t, rng, n, 2, 4, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	victim := inst.Specs[0].Func.Sources()[0]
	d := inst.Specs[0].Dest
	inj := chaos.New(5).WithByzantine(victim, chaos.ByzOffset, 100, 0, chaos.Forever)
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true, Adversary: inj})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, n)
	var prev float64
	for round := 0; round < 3; round++ {
		res, err := eng.Run(readings)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.runMapBased(round, readings, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Values[d]) != math.Float64bits(want.Values[d]) {
			t.Fatalf("round %d: Run %v, reference at the same round %v", round, res.Values[d], want.Values[d])
		}
		if round > 0 && res.Values[d] == prev {
			t.Fatalf("round %d: offset drift did not advance (%v)", round, res.Values[d])
		}
		prev = res.Values[d]
	}
}
