package sim

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
	"m2m/internal/topology"
)

// buildInstance creates a random connected instance with mixed aggregate
// kinds to exercise every record layout.
func buildInstance(t testing.TB, rng *rand.Rand, n, nDests, nSrcs int, shared bool) *plan.Instance {
	t.Helper()
	l := topology.UniformRandom(n, topology.GreatDuckIsland().Area, rng.Int63())
	l.EnsureConnected(50)
	g := l.ConnectivityGraph(50)
	var router routing.Router
	if shared {
		st, err := routing.NewSharedTree(g)
		if err != nil {
			t.Fatal(err)
		}
		router = st
	} else {
		router = routing.NewReversePath(g)
	}
	perm := rng.Perm(n)
	var specs []agg.Spec
	for i := 0; i < nDests && i < n; i++ {
		d := graph.NodeID(perm[i])
		srcSet := make(map[graph.NodeID]bool)
		for len(srcSet) < nSrcs {
			srcSet[graph.NodeID(rng.Intn(n))] = true
		}
		var srcs []graph.NodeID
		w := make(map[graph.NodeID]float64)
		for s := range srcSet {
			srcs = append(srcs, s)
			w[s] = rng.Float64()*2 - 1
		}
		var f agg.Func
		switch i % 4 {
		case 0:
			f = agg.NewWeightedSum(w)
		case 1:
			f = agg.NewWeightedAverage(w)
		case 2:
			f = agg.NewMin(srcs)
		default:
			f = agg.NewWeightedStdDev(w)
		}
		specs = append(specs, agg.Spec{Dest: d, Func: f})
	}
	inst, err := plan.NewInstance(g, router, specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func randomReadings(rng *rand.Rand, n int) map[graph.NodeID]float64 {
	r := make(map[graph.NodeID]float64, n)
	for i := 0; i < n; i++ {
		r[graph.NodeID(i)] = rng.NormFloat64() * 10
	}
	return r
}

// checkGolden runs the engine and compares every destination value with
// direct out-of-network evaluation.
func checkGolden(t *testing.T, inst *plan.Instance, p *plan.Plan, readings map[graph.NodeID]float64, label string) *RoundResult {
	t.Helper()
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	res, err := eng.Run(readings)
	if err != nil {
		t.Fatalf("%s: Run: %v", label, err)
	}
	for _, sp := range inst.Specs {
		vals := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			vals[s] = readings[s]
		}
		want, err := agg.Eval(sp.Func, vals)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Values[sp.Dest]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("%s: destination %d computed %v, want %v", label, sp.Dest, got, want)
		}
	}
	return res
}

func TestGoldenValuesAllMethods(t *testing.T) {
	// The central end-to-end correctness test: for random networks,
	// workloads, aggregate kinds, and routers, in-network execution of
	// every planning method must reproduce the exact aggregate at every
	// destination.
	rng := rand.New(rand.NewSource(2007))
	for trial := 0; trial < 12; trial++ {
		shared := trial%2 == 0
		inst := buildInstance(t, rng, 30+rng.Intn(20), 4+rng.Intn(4), 3+rng.Intn(5), shared)
		readings := randomReadings(rng, inst.Net.Len())

		opt, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, inst, opt, readings, "optimal")
		checkGolden(t, inst, plan.Multicast(inst), readings, "multicast")
		checkGolden(t, inst, plan.AggregateASAP(inst), readings, "aggregation")
	}
}

func TestTheorem2OneMessagePerEdge(t *testing.T) {
	// The paper reports its greedy merge always reaches one message per
	// edge. Verify for the optimal plan on random instances.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		inst := buildInstance(t, rng, 40, 6, 5, true)
		p, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		edges := make(map[routing.Edge]bool)
		for _, u := range eng.units {
			edges[u.Edge] = true
		}
		if len(eng.messages) != len(edges) {
			t.Errorf("trial %d: %d messages for %d edges", trial, len(eng.messages), len(edges))
		}
		// Every message must carry units of exactly one edge.
		for _, msg := range eng.messages {
			e0 := eng.units[msg[0]].Edge
			for _, ui := range msg {
				if eng.units[ui].Edge != e0 {
					t.Fatal("message spans multiple edges")
				}
			}
		}
	}
}

func TestMergeSavesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := buildInstance(t, rng, 40, 6, 6, true)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: false})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	rm, err := merged.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := single.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	if rm.EnergyJ >= rs.EnergyJ {
		t.Errorf("merged energy %v not below single-unit energy %v", rm.EnergyJ, rs.EnergyJ)
	}
	if rm.BodyBytes != rs.BodyBytes {
		t.Errorf("merging changed body bytes: %d vs %d", rm.BodyBytes, rs.BodyBytes)
	}
	if rm.Messages >= rs.Messages {
		t.Errorf("merged %d messages, single %d", rm.Messages, rs.Messages)
	}
	// Values identical either way.
	for d, v := range rm.Values {
		if math.Abs(v-rs.Values[d]) > 1e-9 {
			t.Errorf("value at %d differs across merge modes", d)
		}
	}
}

func TestOptimalEnergyBeatsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		inst := buildInstance(t, rng, 45, 8, 6, true)
		readings := randomReadings(rng, inst.Net.Len())
		energy := func(p *plan.Plan) float64 {
			eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(readings)
			if err != nil {
				t.Fatal(err)
			}
			return res.EnergyJ
		}
		opt, err := plan.Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		eOpt := energy(opt)
		if eMc := energy(plan.Multicast(inst)); eOpt > eMc+1e-12 {
			t.Errorf("trial %d: optimal %v J > multicast %v J", trial, eOpt, eMc)
		}
		if eAg := energy(plan.AggregateASAP(inst)); eOpt > eAg+1e-12 {
			t.Errorf("trial %d: optimal %v J > aggregation %v J", trial, eOpt, eAg)
		}
	}
}

func TestFigure1CExecution(t *testing.T) {
	// End-to-end on the paper's worked example.
	g := graph.NewUndirected(9)
	for _, s := range []graph.NodeID{0, 1, 2, 3} {
		g.AddEdge(s, 4, 1)
	}
	g.AddEdge(4, 5, 1)
	for _, d := range []graph.NodeID{6, 7, 8} {
		g.AddEdge(5, d, 1)
	}
	w := func(ids ...graph.NodeID) map[graph.NodeID]float64 {
		m := make(map[graph.NodeID]float64)
		for _, id := range ids {
			m[id] = float64(id) + 0.5
		}
		return m
	}
	specs := []agg.Spec{
		{Dest: 6, Func: agg.NewWeightedSum(w(0, 1, 2, 3))},
		{Dest: 7, Func: agg.NewWeightedSum(w(0, 1, 2))},
		{Dest: 8, Func: agg.NewWeightedSum(w(0))},
	}
	inst, err := plan.NewInstance(g, routing.NewReversePath(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := map[graph.NodeID]float64{0: 1, 1: 2, 2: 3, 3: 4}
	res := checkGolden(t, inst, p, readings, "fig1c")
	// 8 directed edges carry traffic (4 source links, i→j, 3 dest links):
	// one message each after merging.
	if res.Messages != 8 {
		t.Errorf("messages = %d, want 8", res.Messages)
	}
}

func TestFloodCorrectAndExpensive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inst := buildInstance(t, rng, 40, 5, 5, false)
	readings := randomReadings(rng, inst.Net.Len())

	fl, err := Flood(inst.Net, inst.Specs, radio.DefaultModel(), readings)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range inst.Specs {
		vals := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			vals[s] = readings[s]
		}
		want, err := agg.Eval(sp.Func, vals)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fl.Values[sp.Dest]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("flood value at %d = %v, want %v", sp.Dest, fl.Values[sp.Dest], want)
		}
	}
	if fl.Broadcasts < inst.Net.Len() {
		t.Errorf("flood used only %d broadcasts in a %d-node network", fl.Broadcasts, inst.Net.Len())
	}

	// Flood must cost far more than the optimal plan on a small workload.
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	if fl.EnergyJ < 2*res.EnergyJ {
		t.Errorf("flood %v J suspiciously close to optimal %v J", fl.EnergyJ, res.EnergyJ)
	}
}

func TestEngineRejectsBadRadio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := buildInstance(t, rng, 20, 3, 3, false)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(p, radio.Model{}, Options{}); err == nil {
		t.Error("invalid radio model accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst := buildInstance(t, rng, 30, 4, 4, true)
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, radio.DefaultModel(), Options{MergeMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	readings := randomReadings(rng, inst.Net.Len())
	a, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(readings)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.Messages != b.Messages {
		t.Error("nondeterministic energy accounting")
	}
	for d, v := range a.Values {
		if b.Values[d] != v {
			t.Error("nondeterministic values")
		}
	}
}
