package plan

import (
	"encoding/json"
	"io"
)

// ExportedPlan is the JSON-friendly view of a plan, for tooling and
// offline inspection (cmd/m2mplan -json).
type ExportedPlan struct {
	Method  string         `json:"method"`
	Repairs int            `json:"repairs"`
	Units   int            `json:"units"`
	Bytes   int            `json:"body_bytes"`
	Edges   []ExportedEdge `json:"edges"`
}

// ExportedEdge is one edge's transmit decision.
type ExportedEdge struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	Raw  []int `json:"raw_sources,omitempty"`
	Agg  []int `json:"agg_destinations,omitempty"`
}

// Export returns the serializable view of p, edges in canonical order.
func (p *Plan) Export() *ExportedPlan {
	out := &ExportedPlan{
		Method:  string(p.Method),
		Repairs: p.Repairs,
		Units:   len(p.Units()),
		Bytes:   p.TotalBodyBytes(),
	}
	for _, e := range p.Inst.EdgeList {
		sol := p.Sol[e]
		ee := ExportedEdge{From: int(e.From), To: int(e.To)}
		for _, s := range sortedKeys(sol.Raw) {
			ee.Raw = append(ee.Raw, int(s))
		}
		for _, d := range sortedKeys(sol.Agg) {
			ee.Agg = append(ee.Agg, int(d))
		}
		out.Edges = append(out.Edges, ee)
	}
	return out
}

// WriteJSON writes the exported plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Export())
}
