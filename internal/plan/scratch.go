package plan

import (
	"sync"

	"m2m/internal/graph"
	"m2m/internal/vcover"
)

// edgeScratch is pooled per-worker state for solveEdge: the vcover problem
// under construction plus node-indexed scratch arrays replacing the
// per-solve map[graph.NodeID] structures. The instance already numbers
// nodes densely (0..Net.Len()-1), so index arrays with a stamp epoch give
// O(1) source/destination lookup with no hashing and no clearing — only
// stamps matching the current epoch are live.
type edgeScratch struct {
	prob    vcover.Problem
	sources []graph.NodeID
	dests   []graph.NodeID
	uIdx    []int32 // node → U index, valid for this solve's sources only
	vIdx    []int32 // node → V index, valid for this solve's dests only
	vStamp  []int32 // dedup stamp for dests
	epoch   int32
	forbidU []bool
}

var edgeScratchPool = sync.Pool{New: func() any { return new(edgeScratch) }}

func getEdgeScratch() *edgeScratch   { return edgeScratchPool.Get().(*edgeScratch) }
func putEdgeScratch(sc *edgeScratch) { edgeScratchPool.Put(sc) }

// ensure sizes the node-indexed arrays for a network of n nodes and opens a
// fresh stamp epoch.
func (sc *edgeScratch) ensure(n int) {
	if cap(sc.uIdx) < n {
		sc.uIdx = make([]int32, n)
		sc.vIdx = make([]int32, n)
		sc.vStamp = make([]int32, n)
	}
	sc.uIdx = sc.uIdx[:n]
	sc.vIdx = sc.vIdx[:n]
	sc.vStamp = sc.vStamp[:n]
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap: invalidate everything once
		for i := range sc.vStamp {
			sc.vStamp[i] = -1
		}
		sc.epoch = 1
	}
}
