package plan

import (
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/routing"
)

// withExtraSource returns inst's specs with one new source added to the
// spec of dest.
func withExtraSource(t *testing.T, inst *Instance, dest, src graph.NodeID) []agg.Spec {
	t.Helper()
	var specs []agg.Spec
	for _, sp := range inst.Specs {
		if sp.Dest != dest {
			specs = append(specs, sp)
			continue
		}
		w := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			w[s] = 1
		}
		w[src] = 1
		specs = append(specs, agg.Spec{Dest: dest, Func: agg.NewWeightedSum(w)})
	}
	return specs
}

func TestReoptimizeMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 40, 6, 5, sharedRouter(t))
		old, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		// Add a random new source to a random destination.
		dests := inst.Dests()
		d := dests[rng.Intn(len(dests))]
		var src graph.NodeID
		for {
			src = graph.NodeID(rng.Intn(inst.Net.Len()))
			if !inst.SpecByDest[d].Func.HasSource(src) {
				break
			}
		}
		newInst, err := NewInstance(inst.Net, inst.Router, withExtraSource(t, inst, d, src))
		if err != nil {
			t.Fatal(err)
		}

		incr, stats, err := Reoptimize(old, newInst)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Optimize(newInst)
		if err != nil {
			t.Fatal(err)
		}
		if incr.TotalBodyBytes() != fresh.TotalBodyBytes() {
			t.Fatalf("trial %d: incremental cost %d != fresh cost %d",
				trial, incr.TotalBodyBytes(), fresh.TotalBodyBytes())
		}
		for e, sol := range fresh.Sol {
			if !sameSolution(sol, incr.Sol[e]) {
				t.Fatalf("trial %d: solutions differ on %v", trial, e)
			}
		}
		if stats.EdgesReused == 0 {
			t.Errorf("trial %d: nothing reused (total %d edges)", trial, stats.EdgesTotal)
		}
		if stats.EdgesReused+stats.EdgesSolved < stats.EdgesTotal {
			t.Errorf("trial %d: reused %d + solved %d < total %d",
				trial, stats.EdgesReused, stats.EdgesSolved, stats.EdgesTotal)
		}
	}
}

func TestCorollary1Locality(t *testing.T) {
	// Adding one source must leave every edge whose single-edge inputs are
	// unchanged with an unchanged solution (Corollary 1): the number of
	// changed solutions must be at most the number of freshly solved edges.
	rng := rand.New(rand.NewSource(62))
	inst := randomInstance(t, rng, 50, 8, 6, sharedRouter(t))
	old, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.Dests()[0]
	var src graph.NodeID
	for {
		src = graph.NodeID(rng.Intn(inst.Net.Len()))
		if !inst.SpecByDest[d].Func.HasSource(src) {
			break
		}
	}
	newInst, err := NewInstance(inst.Net, inst.Router, withExtraSource(t, inst, d, src))
	if err != nil {
		t.Fatal(err)
	}
	incr, stats, err := Reoptimize(old, newInst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EdgesChangedSolution > stats.EdgesSolved {
		t.Errorf("changed %d > solved %d: a reused edge changed its solution",
			stats.EdgesChangedSolution, stats.EdgesSolved)
	}
	// The touched edges must lie on the new pair's path.
	path := newInst.Paths[Pair{Source: src, Dest: d}]
	onPath := make(map[routing.Edge]bool)
	for i := 0; i+1 < len(path); i++ {
		onPath[routing.Edge{From: path[i], To: path[i+1]}] = true
	}
	for e, sol := range incr.Sol {
		prev, existed := old.Sol[e]
		if existed && !sameSolution(prev, sol) && !onPath[e] {
			t.Errorf("edge %v changed solution but is not on the new pair's path", e)
		}
	}
}

func TestReoptimizeFromNil(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	inst := randomInstance(t, rng, 30, 5, 4, sharedRouter(t))
	p, stats, err := Reoptimize(nil, inst)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBodyBytes() != fresh.TotalBodyBytes() {
		t.Error("nil-based reoptimize differs from Optimize")
	}
	if stats.EdgesReused != 0 || stats.EdgesSolved < stats.EdgesTotal {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRemoveSourceLocality(t *testing.T) {
	// Removing a source: only edges along its old path may change.
	rng := rand.New(rand.NewSource(64))
	inst := randomInstance(t, rng, 45, 6, 6, sharedRouter(t))
	old, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.Dests()[0]
	victim := inst.SpecByDest[d].Func.Sources()[0]
	var specs []agg.Spec
	for _, sp := range inst.Specs {
		if sp.Dest != d {
			specs = append(specs, sp)
			continue
		}
		w := make(map[graph.NodeID]float64)
		for _, s := range sp.Func.Sources() {
			if s != victim {
				w[s] = 1
			}
		}
		specs = append(specs, agg.Spec{Dest: d, Func: agg.NewWeightedSum(w)})
	}
	newInst, err := NewInstance(inst.Net, inst.Router, specs)
	if err != nil {
		t.Fatal(err)
	}
	incr, _, err := Reoptimize(old, newInst)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Optimize(newInst)
	if err != nil {
		t.Fatal(err)
	}
	if incr.TotalBodyBytes() != fresh.TotalBodyBytes() {
		t.Error("incremental after removal differs from fresh")
	}
	oldPath := inst.Paths[Pair{Source: victim, Dest: d}]
	onPath := make(map[routing.Edge]bool)
	for i := 0; i+1 < len(oldPath); i++ {
		onPath[routing.Edge{From: oldPath[i], To: oldPath[i+1]}] = true
	}
	for e, sol := range incr.Sol {
		if prev, ok := old.Sol[e]; ok && !sameSolution(prev, sol) && !onPath[e] {
			t.Errorf("edge %v off the removed pair's path changed", e)
		}
	}
}
