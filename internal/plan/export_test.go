package plan

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExportFigure1C(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Export()
	if ex.Method != "optimal" || ex.Repairs != 0 {
		t.Errorf("header = %+v", ex)
	}
	if ex.Units != len(p.Units()) || ex.Bytes != p.TotalBodyBytes() {
		t.Errorf("sizes = %+v", ex)
	}
	if len(ex.Edges) != len(inst.EdgeList) {
		t.Fatalf("exported %d edges, want %d", len(ex.Edges), len(inst.EdgeList))
	}
	// Find edge i→j (4→5) and verify its decision.
	found := false
	for _, e := range ex.Edges {
		if e.From == 4 && e.To == 5 {
			found = true
			if len(e.Raw) != 1 || e.Raw[0] != 0 {
				t.Errorf("raw = %v", e.Raw)
			}
			if len(e.Agg) != 2 || e.Agg[0] != 6 || e.Agg[1] != 7 {
				t.Errorf("agg = %v", e.Agg)
			}
		}
	}
	if !found {
		t.Error("edge 4→5 missing from export")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back ExportedPlan
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Method != "optimal" || len(back.Edges) != len(inst.EdgeList) {
		t.Errorf("round trip = %+v", back)
	}
}
