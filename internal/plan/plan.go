package plan

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/routing"
	"m2m/internal/vcover"
)

// Method names a planning strategy (the paper's four algorithms minus
// flood, which needs no plan).
type Method string

// Planning strategies.
const (
	MethodOptimal     Method = "optimal"     // balanced multicast + aggregation (the paper's contribution)
	MethodMulticast   Method = "multicast"   // raw values all the way; aggregate only at destinations
	MethodAggregation Method = "aggregation" // aggregate at the earliest opportunity
)

// EdgeSolution is the transmit decision for one directed edge: which
// sources travel raw and which destinations travel as partial aggregate
// records (the vertex cover of the edge's bipartite problem).
type EdgeSolution struct {
	Raw map[graph.NodeID]bool
	Agg map[graph.NodeID]bool
	// ForbiddenRaw records sources whose raw option was removed by the
	// consistency repair pass (only non-empty when the router violates the
	// paper's sharing restriction). It is nil until the repair pass first
	// touches the edge.
	ForbiddenRaw map[graph.NodeID]bool
	// Resolves counts how many times this edge was (re-)solved.
	Resolves int
	// shared marks a solution carried over by reference from an old plan
	// during Reoptimize; the repair loop clones it before mutating. It is
	// atomic because a cached plan may serve as the Reoptimize base of
	// many concurrent sessions (the serving layer's plan cache), each
	// marking the same carried-over solutions shared.
	shared atomic.Bool
}

// NewEdgeSolution returns an empty solution with initialized sets, for
// alternative planners (e.g. the distributed optimizer) that assemble
// Plans themselves.
func NewEdgeSolution() *EdgeSolution {
	return &EdgeSolution{
		Raw:          make(map[graph.NodeID]bool),
		Agg:          make(map[graph.NodeID]bool),
		ForbiddenRaw: make(map[graph.NodeID]bool),
	}
}

func newEdgeSolution() *EdgeSolution { return NewEdgeSolution() }

// Plan is a global many-to-many aggregation plan: one EdgeSolution per
// workload edge.
type Plan struct {
	Inst    *Instance
	Method  Method
	Sol     map[routing.Edge]*EdgeSolution
	Repairs int // edges re-solved to restore consistency (0 under Theorem 1's assumptions)
	// Prices are the per-node energy prices the plan was solved under (nil
	// or missing entries mean price 1). A node's price multiplies its unit
	// weight in every edge's vertex-cover problem, so the cover prefers
	// putting transmission burden on cheap (energy-rich) nodes — the
	// energy-weighted tiebreak of the evacuation replan.
	Prices map[graph.NodeID]int64
}

// priceOf is the effective vertex-cover price of node n: entries below 1
// (and absent or nil maps) price at 1, the unweighted problem.
func priceOf(prices map[graph.NodeID]int64, n graph.NodeID) int64 {
	if p, ok := prices[n]; ok && p > 1 {
		return p
	}
	return 1
}

// Optimize computes the paper's optimal plan: every edge is solved as an
// independent weighted bipartite vertex cover with the canonical global
// tiebreak. If the router satisfies the paper's sharing restriction,
// Theorem 1 guarantees the per-edge optima are mutually consistent and the
// repair loop never fires; otherwise conflicting edges are re-solved with
// the unavailable raw options forbidden, and Repairs reports how many.
func Optimize(inst *Instance) (*Plan, error) {
	return OptimizeWithPrices(inst, nil)
}

// OptimizeWithPrices is Optimize with per-node energy prices scaling the
// cover weights (see Plan.Prices). With a nil map it is exactly Optimize.
func OptimizeWithPrices(inst *Instance, prices map[graph.NodeID]int64) (*Plan, error) {
	p := &Plan{Inst: inst, Method: MethodOptimal, Sol: make(map[routing.Edge]*EdgeSolution, len(inst.EdgeList)), Prices: prices}
	// The single-edge problems are independent by construction (that is
	// the point of Theorem 1), so solve them in parallel; results are
	// identical to a sequential pass regardless of scheduling.
	sols := make([]*EdgeSolution, len(inst.EdgeList))
	errs := make([]error, len(inst.EdgeList))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(inst.EdgeList) {
		workers = len(inst.EdgeList)
	}
	var next int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getEdgeScratch()
			defer putEdgeScratch(sc)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(inst.EdgeList) {
					return
				}
				sols[i], errs[i] = solveEdge(inst, inst.EdgeList[i], nil, prices, sc)
			}
		}()
	}
	wg.Wait()
	for i, e := range inst.EdgeList {
		if errs[i] != nil {
			return nil, errs[i]
		}
		p.Sol[e] = sols[i]
	}
	if err := p.repairLoop(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: internal error: %w", err)
	}
	return p, nil
}

// repairLoop restores consistency: it forbids raw options that upstream
// decisions made unavailable and re-solves the affected edges, to
// fixpoint. Each iteration forbids at least one new (edge, source) raw
// option, so the loop terminates. Under the paper's sharing restriction
// (Theorem 1) no iteration ever fires.
func (p *Plan) repairLoop() error {
	var sc *edgeScratch
	for {
		violations := p.rawViolations()
		if len(violations) == 0 {
			return nil
		}
		if sc == nil {
			sc = getEdgeScratch()
			defer putEdgeScratch(sc)
		}
		resolve := make(map[routing.Edge]bool)
		for _, v := range violations {
			sol := p.Sol[v.edge]
			if sol.shared.Load() {
				sol = cloneSolution(sol)
				p.Sol[v.edge] = sol
			}
			if sol.ForbiddenRaw == nil {
				sol.ForbiddenRaw = make(map[graph.NodeID]bool)
			}
			sol.ForbiddenRaw[v.source] = true
			resolve[v.edge] = true
		}
		for e := range resolve {
			old := p.Sol[e]
			sol, err := solveEdge(p.Inst, e, old.ForbiddenRaw, p.Prices, sc)
			if err != nil {
				return err
			}
			sol.Resolves = old.Resolves + 1
			sol.ForbiddenRaw = make(map[graph.NodeID]bool, len(old.ForbiddenRaw))
			for s := range old.ForbiddenRaw {
				sol.ForbiddenRaw[s] = true
			}
			p.Sol[e] = sol
			p.Repairs++
		}
	}
}

// Multicast returns the pure-multicast baseline plan: every value crosses
// every edge raw and is aggregated only at its destination.
func Multicast(inst *Instance) *Plan {
	p := &Plan{Inst: inst, Method: MethodMulticast, Sol: make(map[routing.Edge]*EdgeSolution, len(inst.EdgeList))}
	for _, e := range inst.EdgeList {
		sol := newEdgeSolution()
		for _, s := range inst.EdgeSources(e) {
			sol.Raw[s] = true
		}
		sol.Resolves = 1
		p.Sol[e] = sol
	}
	return p
}

// AggregateASAP returns the pure in-network aggregation baseline: every
// value is folded into per-destination partial records at the earliest
// opportunity (already at the source), as in Figure 1(A)'s bad case.
func AggregateASAP(inst *Instance) *Plan {
	p := &Plan{Inst: inst, Method: MethodAggregation, Sol: make(map[routing.Edge]*EdgeSolution, len(inst.EdgeList))}
	for _, e := range inst.EdgeList {
		sol := newEdgeSolution()
		for _, d := range inst.EdgeDests(e) {
			sol.Agg[d] = true
		}
		sol.Resolves = 1
		p.Sol[e] = sol
	}
	return p
}

// solveEdge reduces edge e to weighted bipartite vertex cover and solves it
// exactly. U holds the sources S_e (weight: raw unit bytes), V the
// destinations D_e (weight: that destination's record unit bytes), with the
// canonical tiebreak keys 2·node (source role) and 2·node+1 (destination
// role) shared by every edge in the network. Non-nil prices multiply each
// endpoint's weight by its node's energy price, biasing the cover toward
// keeping traffic off expensive (energy-poor) nodes. sc carries the pooled
// per-worker scratch; the problem it builds is identical to the former
// map-based construction (EdgePairs is sorted by (Source, Dest), so sources
// dedup adjacently and duplicate cover edges are adjacent too).
func solveEdge(inst *Instance, e routing.Edge, forbidRaw map[graph.NodeID]bool, prices map[graph.NodeID]int64, sc *edgeScratch) (*EdgeSolution, error) {
	pairs := inst.EdgePairs[e]
	sc.ensure(inst.Net.Len())
	sc.sources = sc.sources[:0]
	sc.dests = sc.dests[:0]
	for _, pr := range pairs {
		if n := len(sc.sources); n == 0 || sc.sources[n-1] != pr.Source {
			sc.sources = append(sc.sources, pr.Source)
		}
		if sc.vStamp[pr.Dest] != sc.epoch {
			sc.vStamp[pr.Dest] = sc.epoch
			sc.dests = append(sc.dests, pr.Dest)
		}
	}
	slices.Sort(sc.dests)

	prob := &sc.prob
	prob.U = prob.U[:0]
	prob.V = prob.V[:0]
	prob.Edges = prob.Edges[:0]
	for i, s := range sc.sources {
		sc.uIdx[s] = int32(i)
		prob.U = append(prob.U, vcover.Vertex{Key: int(s) * 2, Weight: int64(agg.RawUnitBytes) * priceOf(prices, s)})
	}
	for j, d := range sc.dests {
		sc.vIdx[d] = int32(j)
		prob.V = append(prob.V, vcover.Vertex{Key: int(d)*2 + 1, Weight: int64(agg.UnitBytes(inst.SpecByDest[d].Func)) * priceOf(prices, d)})
	}
	lastI, lastJ := int32(-1), int32(-1)
	for _, pr := range pairs {
		i, j := sc.uIdx[pr.Source], sc.vIdx[pr.Dest]
		if i == lastI && j == lastJ {
			continue
		}
		lastI, lastJ = i, j
		prob.Edges = append(prob.Edges, [2]int{int(i), int(j)})
	}

	var forbidU []bool
	if len(forbidRaw) > 0 {
		sc.forbidU = sc.forbidU[:0]
		for _, s := range sc.sources {
			sc.forbidU = append(sc.forbidU, forbidRaw[s])
		}
		forbidU = sc.forbidU
	}
	cover, err := vcover.SolveConstrained(prob, forbidU)
	if err != nil {
		return nil, fmt.Errorf("plan: edge %v: %w", e, err)
	}
	nRaw, nAgg := 0, 0
	for i := range sc.sources {
		if cover.InU[i] {
			nRaw++
		}
	}
	for j := range sc.dests {
		if cover.InV[j] {
			nAgg++
		}
	}
	sol := &EdgeSolution{
		Raw:      make(map[graph.NodeID]bool, nRaw),
		Agg:      make(map[graph.NodeID]bool, nAgg),
		Resolves: 1,
	}
	for i, s := range sc.sources {
		if cover.InU[i] {
			sol.Raw[s] = true
		}
	}
	for j, d := range sc.dests {
		if cover.InV[j] {
			sol.Agg[d] = true
		}
	}
	return sol, nil
}

type violation struct {
	edge   routing.Edge
	source graph.NodeID
}

// rawViolations finds every edge that transmits a source raw although the
// raw value cannot have reached the edge's tail (it was aggregated on every
// upstream route). Availability is a fixpoint over the source's multicast
// structure: the value is available at the source itself and at the head
// of every edge that both transmits it raw and has it available at its
// tail.
func (p *Plan) rawViolations() []violation {
	// Group each source's raw-carrying edges.
	edgesBySource := make(map[graph.NodeID][]routing.Edge)
	for _, e := range p.Inst.EdgeList {
		for s := range p.Sol[e].Raw {
			edgesBySource[s] = append(edgesBySource[s], e)
		}
	}
	var out []violation
	srcs := make([]graph.NodeID, 0, len(edgesBySource))
	for s := range edgesBySource {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		edges := edgesBySource[s]
		avail := map[graph.NodeID]bool{s: true}
		for changed := true; changed; {
			changed = false
			for _, e := range edges {
				if avail[e.From] && !avail[e.To] {
					avail[e.To] = true
					changed = true
				}
			}
		}
		for _, e := range edges {
			if !avail[e.From] {
				out = append(out, violation{edge: e, source: s})
			}
		}
	}
	return out
}

// Validate checks that the plan is executable: every pair is covered on
// every edge of its path, raw transmissions are available at their tails,
// and forbidden raw options are respected.
func (p *Plan) Validate() error {
	for _, e := range p.Inst.EdgeList {
		sol, ok := p.Sol[e]
		if !ok {
			return fmt.Errorf("plan: edge %v has no solution", e)
		}
		for _, pr := range p.Inst.EdgePairs[e] {
			if !sol.Raw[pr.Source] && !sol.Agg[pr.Dest] {
				return fmt.Errorf("plan: pair %d→%d uncovered on edge %v", pr.Source, pr.Dest, e)
			}
		}
		for s := range sol.Raw {
			if sol.ForbiddenRaw[s] {
				return fmt.Errorf("plan: forbidden raw %d transmitted on %v", s, e)
			}
		}
	}
	if vs := p.rawViolations(); len(vs) > 0 {
		return fmt.Errorf("plan: raw value %d unavailable at tail of %v (and %d more)",
			vs[0].source, vs[0].edge, len(vs)-1)
	}
	return nil
}

// UnitKind distinguishes the two message unit types of Section 3.
type UnitKind int

// Message unit kinds.
const (
	UnitRaw UnitKind = iota // raw value tagged with its source
	UnitAgg                 // partial aggregate record tagged with its destination
)

// Unit is one message unit crossing one edge.
type Unit struct {
	Edge routing.Edge
	Kind UnitKind
	Node graph.NodeID // source ID for UnitRaw, destination ID for UnitAgg
}

// Bytes returns the unit's on-wire size under the instance's workload.
func (p *Plan) Bytes(u Unit) int {
	if u.Kind == UnitRaw {
		return agg.RawUnitBytes
	}
	return agg.UnitBytes(p.Inst.SpecByDest[u.Node].Func)
}

// EdgeUnits lists the message units crossing e, raw units first, each
// group ascending by node, matching the deterministic order used
// throughout the executor.
func (p *Plan) EdgeUnits(e routing.Edge) []Unit {
	sol := p.Sol[e]
	if sol == nil {
		return nil
	}
	var units []Unit
	for _, s := range sortedKeys(sol.Raw) {
		units = append(units, Unit{Edge: e, Kind: UnitRaw, Node: s})
	}
	for _, d := range sortedKeys(sol.Agg) {
		units = append(units, Unit{Edge: e, Kind: UnitAgg, Node: d})
	}
	return units
}

// Units lists every message unit of the plan in edge order.
func (p *Plan) Units() []Unit {
	var out []Unit
	for _, e := range p.Inst.EdgeList {
		out = append(out, p.EdgeUnits(e)...)
	}
	return out
}

// BodyBytes returns the total unit payload crossing e.
func (p *Plan) BodyBytes(e routing.Edge) int {
	total := 0
	for _, u := range p.EdgeUnits(e) {
		total += p.Bytes(u)
	}
	return total
}

// TotalBodyBytes sums unit payloads over all edges: the static cost the
// per-edge optimization minimizes (excluding per-message headers, which
// the simulator adds after merging).
func (p *Plan) TotalBodyBytes() int {
	total := 0
	for _, e := range p.Inst.EdgeList {
		total += p.BodyBytes(e)
	}
	return total
}

func sortedKeys(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
