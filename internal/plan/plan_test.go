package plan

import (
	"math/rand"
	"testing"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/routing"
	"m2m/internal/topology"
)

// fig1cNetwork builds the paper's Figure 1(C) scenario:
// sources a,b,c,d → relay i → relay j → destinations k,l,m with
//
//	f_k over {a,b,c,d}, f_l over {a,b,c}, f_m over {a}.
//
// Node IDs: a=0 b=1 c=2 d=3 i=4 j=5 k=6 l=7 m=8.
func fig1cNetwork(t *testing.T) *Instance {
	t.Helper()
	g := graph.NewUndirected(9)
	for _, s := range []graph.NodeID{0, 1, 2, 3} {
		if err := g.AddEdge(s, 4, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	for _, d := range []graph.NodeID{6, 7, 8} {
		if err := g.AddEdge(5, d, 1); err != nil {
			t.Fatal(err)
		}
	}
	w := func(ids ...graph.NodeID) map[graph.NodeID]float64 {
		m := make(map[graph.NodeID]float64)
		for _, id := range ids {
			m[id] = 1 + float64(id)/10
		}
		return m
	}
	specs := []agg.Spec{
		{Dest: 6, Func: agg.NewWeightedSum(w(0, 1, 2, 3))},
		{Dest: 7, Func: agg.NewWeightedSum(w(0, 1, 2))},
		{Dest: 8, Func: agg.NewWeightedSum(w(0))},
	}
	inst, err := NewInstance(g, routing.NewReversePath(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPaperFigure1CPlan(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if p.Repairs != 0 {
		t.Errorf("Repairs = %d on a tree network", p.Repairs)
	}
	ij := routing.Edge{From: 4, To: 5}
	sol := p.Sol[ij]
	if sol == nil {
		t.Fatal("no solution on edge i→j")
	}
	// The paper's optimal plan for i→j: raw a plus records for k and l.
	if !sol.Raw[0] || len(sol.Raw) != 1 {
		t.Errorf("Raw(i→j) = %v, want {a}", sol.Raw)
	}
	if !sol.Agg[6] || !sol.Agg[7] || sol.Agg[8] || len(sol.Agg) != 2 {
		t.Errorf("Agg(i→j) = %v, want {k, l}", sol.Agg)
	}
	// Three message units on i→j, as in the figure.
	if units := p.EdgeUnits(ij); len(units) != 3 {
		t.Errorf("units on i→j = %v", units)
	}
}

func TestInstanceValidation(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	r := routing.NewReversePath(g)
	wsum := func(ids ...graph.NodeID) agg.Func {
		m := make(map[graph.NodeID]float64)
		for _, id := range ids {
			m[id] = 1
		}
		return agg.NewWeightedSum(m)
	}
	if _, err := NewInstance(g, r, []agg.Spec{{Dest: 2}}); err == nil {
		t.Error("nil func accepted")
	}
	dup := []agg.Spec{
		{Dest: 2, Func: wsum(0)},
		{Dest: 2, Func: wsum(1)},
	}
	if _, err := NewInstance(g, r, dup); err == nil {
		t.Error("duplicate destination accepted")
	}
	if _, err := NewInstance(g, r, []agg.Spec{{Dest: 9, Func: wsum(0)}}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewInstance(g, r, []agg.Spec{{Dest: 2, Func: wsum(9)}}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestInstanceEdgePairs(t *testing.T) {
	inst := fig1cNetwork(t)
	ij := routing.Edge{From: 4, To: 5}
	pairs := inst.EdgePairs[ij]
	// 4+3+1 = 8 pairs cross i→j.
	if len(pairs) != 8 {
		t.Fatalf("pairs on i→j = %v", pairs)
	}
	if got := inst.EdgeSources(ij); len(got) != 4 {
		t.Errorf("S_e = %v", got)
	}
	if got := inst.EdgeDests(ij); len(got) != 3 {
		t.Errorf("D_e = %v", got)
	}
	// No pairs on the reverse edge.
	if len(inst.EdgePairs[routing.Edge{From: 5, To: 4}]) != 0 {
		t.Error("phantom pairs on reverse edge")
	}
	if inst.PairEdgeIndex(Pair{Source: 0, Dest: 6}, ij) != 1 {
		t.Error("PairEdgeIndex wrong")
	}
	if inst.PairEdgeIndex(Pair{Source: 0, Dest: 6}, routing.Edge{From: 9, To: 9}) != -1 {
		t.Error("PairEdgeIndex of absent edge")
	}
}

func TestTreeSizes(t *testing.T) {
	inst := fig1cNetwork(t)
	// T_a spans a,i,j,k,l,m = 6 nodes; A_k spans a,b,c,d,i,j,k = 7 nodes.
	if got := inst.MulticastSize(0); got != 6 {
		t.Errorf("|T_a| = %d, want 6", got)
	}
	if got := inst.AggTreeSize(6); got != 7 {
		t.Errorf("|A_k| = %d, want 7", got)
	}
	if got := inst.Sources(); len(got) != 4 {
		t.Errorf("Sources = %v", got)
	}
	if got := inst.Dests(); len(got) != 3 || got[0] != 6 {
		t.Errorf("Dests = %v", got)
	}
}

// randomInstance builds a random connected network with a random workload.
func randomInstance(t testing.TB, rng *rand.Rand, n, nDests, nSrcsPer int, router func(*graph.Undirected) routing.Router) *Instance {
	t.Helper()
	l := topology.UniformRandom(n, topology.GreatDuckIsland().Area, rng.Int63())
	l.EnsureConnected(50)
	g := l.ConnectivityGraph(50)
	perm := rng.Perm(n)
	var specs []agg.Spec
	for i := 0; i < nDests && i < n; i++ {
		d := graph.NodeID(perm[i])
		w := make(map[graph.NodeID]float64)
		for len(w) < nSrcsPer {
			s := graph.NodeID(rng.Intn(n))
			w[s] = rng.Float64()*2 - 1
		}
		specs = append(specs, agg.Spec{Dest: d, Func: agg.NewWeightedSum(w)})
	}
	inst, err := NewInstance(g, router(g), specs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func sharedRouter(t testing.TB) func(*graph.Undirected) routing.Router {
	return func(g *graph.Undirected) routing.Router {
		st, err := routing.NewSharedTree(g)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
}

func reverseRouter(g *graph.Undirected) routing.Router { return routing.NewReversePath(g) }

func TestTheorem1NoRepairsUnderSharing(t *testing.T) {
	// With the shared-tree router both routing restrictions hold, so the
	// independently solved edges must assemble without any repair.
	rng := rand.New(rand.NewSource(2007))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(t, rng, 40, 6, 5, sharedRouter(t))
		p, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		if p.Repairs != 0 {
			t.Fatalf("trial %d: Theorem 1 violated, %d repairs under shared-tree routing", trial, p.Repairs)
		}
	}
}

func TestOptimalBeatsBaselinesUnderSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 40, 8, 6, sharedRouter(t))
		opt, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		mc, ag := Multicast(inst), AggregateASAP(inst)
		if opt.TotalBodyBytes() > mc.TotalBodyBytes() {
			t.Errorf("trial %d: optimal %d B > multicast %d B", trial, opt.TotalBodyBytes(), mc.TotalBodyBytes())
		}
		if opt.TotalBodyBytes() > ag.TotalBodyBytes() {
			t.Errorf("trial %d: optimal %d B > aggregation %d B", trial, opt.TotalBodyBytes(), ag.TotalBodyBytes())
		}
	}
}

func TestAllMethodsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		for _, mk := range []func(*Instance) *Plan{Multicast, AggregateASAP} {
			inst := randomInstance(t, rng, 30, 5, 4, reverseRouter)
			p := mk(inst)
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d: %s invalid: %v", trial, p.Method, err)
			}
		}
		inst := randomInstance(t, rng, 30, 5, 4, reverseRouter)
		p, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: optimal invalid: %v", trial, err)
		}
	}
}

func TestOptimalNotWorseThanAggregationEver(t *testing.T) {
	// Even when repairs fire (reverse-path router), every constrained
	// per-edge cover is still no worse than the all-destinations cover,
	// so globally optimal ≤ aggregation.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 50, 10, 8, reverseRouter)
		opt, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		if ag := AggregateASAP(inst); opt.TotalBodyBytes() > ag.TotalBodyBytes() {
			t.Errorf("trial %d: optimal %d B > aggregation %d B (repairs=%d)",
				trial, opt.TotalBodyBytes(), ag.TotalBodyBytes(), opt.Repairs)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(8))
	rng2 := rand.New(rand.NewSource(8))
	a := randomInstance(t, rng1, 35, 6, 5, reverseRouter)
	b := randomInstance(t, rng2, 35, 6, 5, reverseRouter)
	pa, err := Optimize(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Optimize(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.TotalBodyBytes() != pb.TotalBodyBytes() {
		t.Fatal("nondeterministic plan cost")
	}
	for e, sa := range pa.Sol {
		if !sameSolution(sa, pb.Sol[e]) {
			t.Fatalf("nondeterministic solution on %v", e)
		}
	}
}

func TestUnitsAndBytes(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	ij := routing.Edge{From: 4, To: 5}
	units := p.EdgeUnits(ij)
	if len(units) != 3 {
		t.Fatalf("units = %v", units)
	}
	if units[0].Kind != UnitRaw || units[0].Node != 0 {
		t.Errorf("first unit = %v, want raw a", units[0])
	}
	// Weighted sum: every unit is RawUnitBytes on the wire.
	if got := p.BodyBytes(ij); got != 3*agg.RawUnitBytes {
		t.Errorf("BodyBytes(i→j) = %d", got)
	}
	if p.TotalBodyBytes() <= 0 {
		t.Error("TotalBodyBytes not positive")
	}
	if len(p.Units()) == 0 {
		t.Error("Units empty")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	ij := routing.Edge{From: 4, To: 5}
	// Remove the raw transmission of a without covering its pairs.
	delete(p.Sol[ij].Raw, 0)
	if err := p.Validate(); err == nil {
		t.Error("uncovered pair not detected")
	}
	// Restore coverage but break availability: claim a travels raw on j→k
	// while every upstream edge aggregates it.
	p2, err := Optimize(fig1cNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p2.Inst.EdgeList {
		delete(p2.Sol[e].Raw, 0)
		p2.Sol[e].Agg[6] = true
		p2.Sol[e].Agg[8] = true
	}
	p2.Sol[routing.Edge{From: 5, To: 8}].Raw[0] = true
	if err := p2.Validate(); err == nil {
		t.Error("unavailable raw not detected")
	}
}
