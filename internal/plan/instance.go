// Package plan implements the paper's many-to-many aggregation optimizer:
// it reduces each directed multicast edge to a weighted bipartite vertex
// cover (Section 2.2), assembles the independently solved edges into a
// consistent global plan (Section 2.3, Theorem 1), builds the four
// per-node runtime tables (Section 3), and supports incremental
// re-optimization when the workload changes (Corollary 1).
package plan

import (
	"fmt"
	"slices"
	"sort"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/routing"
)

// Pair is one producer→consumer relationship: Source ∼ Dest.
type Pair struct {
	Source, Dest graph.NodeID
}

// Instance is a fully resolved optimization input: the workload plus the
// canonical route of every pair and, per directed edge, the pairs whose
// route crosses it (the ∼_e relation).
type Instance struct {
	Net    *graph.Undirected
	Router routing.Router
	Specs  []agg.Spec

	// SpecByDest indexes Specs by destination (one function per node, as in
	// the paper).
	SpecByDest map[graph.NodeID]agg.Spec
	// Paths holds the canonical route of every pair, endpoints inclusive.
	Paths map[Pair][]graph.NodeID
	// EdgePairs holds, per directed edge, the pairs crossing it, sorted by
	// (Source, Dest) for determinism.
	EdgePairs map[routing.Edge][]Pair
	// EdgeList holds every edge with at least one pair, sorted.
	EdgeList []routing.Edge
}

// NewInstance resolves routes for every pair of the workload and verifies
// the router's per-destination suffix property. Specs must have distinct
// destinations and non-empty source sets.
func NewInstance(net *graph.Undirected, router routing.Router, specs []agg.Spec) (*Instance, error) {
	inst := &Instance{
		Net:        net,
		Router:     router,
		Specs:      append([]agg.Spec(nil), specs...),
		SpecByDest: make(map[graph.NodeID]agg.Spec, len(specs)),
		Paths:      make(map[Pair][]graph.NodeID),
		EdgePairs:  make(map[routing.Edge][]Pair),
	}
	for _, sp := range inst.Specs {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		if int(sp.Dest) < 0 || int(sp.Dest) >= net.Len() {
			return nil, fmt.Errorf("plan: destination %d out of range", sp.Dest)
		}
		if _, dup := inst.SpecByDest[sp.Dest]; dup {
			return nil, fmt.Errorf("plan: destination %d has two aggregation functions", sp.Dest)
		}
		inst.SpecByDest[sp.Dest] = sp
	}

	byDest := make(map[graph.NodeID][][]graph.NodeID)
	for _, sp := range inst.Specs {
		for _, s := range sp.Func.Sources() {
			if int(s) < 0 || int(s) >= net.Len() {
				return nil, fmt.Errorf("plan: source %d out of range", s)
			}
			pr := Pair{Source: s, Dest: sp.Dest}
			path, err := router.Path(s, sp.Dest)
			if err != nil {
				return nil, fmt.Errorf("plan: routing pair %d→%d: %w", s, sp.Dest, err)
			}
			inst.Paths[pr] = path
			byDest[sp.Dest] = append(byDest[sp.Dest], path)
			for i := 0; i+1 < len(path); i++ {
				e := routing.Edge{From: path[i], To: path[i+1]}
				inst.EdgePairs[e] = append(inst.EdgePairs[e], pr)
			}
		}
	}
	if err := routing.CheckSuffixProperty(byDest); err != nil {
		return nil, fmt.Errorf("plan: router %q unusable: %w", router.Name(), err)
	}

	for e, pairs := range inst.EdgePairs {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Source != pairs[j].Source {
				return pairs[i].Source < pairs[j].Source
			}
			return pairs[i].Dest < pairs[j].Dest
		})
		inst.EdgeList = append(inst.EdgeList, e)
	}
	sort.Slice(inst.EdgeList, func(i, j int) bool {
		if inst.EdgeList[i].From != inst.EdgeList[j].From {
			return inst.EdgeList[i].From < inst.EdgeList[j].From
		}
		return inst.EdgeList[i].To < inst.EdgeList[j].To
	})
	return inst, nil
}

// EdgeSources returns the distinct sources S_e crossing e, ascending.
// EdgePairs is sorted by (Source, Dest), so this is an adjacent dedup.
func (inst *Instance) EdgeSources(e routing.Edge) []graph.NodeID {
	var out []graph.NodeID
	for _, p := range inst.EdgePairs[e] {
		if n := len(out); n == 0 || out[n-1] != p.Source {
			out = append(out, p.Source)
		}
	}
	return out
}

// EdgeDests returns the distinct destinations D_e crossing e, ascending.
func (inst *Instance) EdgeDests(e routing.Edge) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(inst.EdgePairs[e]))
	for _, p := range inst.EdgePairs[e] {
		out = append(out, p.Dest)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// InEdges returns the directed workload edges entering n, sorted.
func (inst *Instance) InEdges(n graph.NodeID) []routing.Edge {
	var out []routing.Edge
	for _, e := range inst.EdgeList {
		if e.To == n {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the directed workload edges leaving n, sorted.
func (inst *Instance) OutEdges(n graph.NodeID) []routing.Edge {
	var out []routing.Edge
	for _, e := range inst.EdgeList {
		if e.From == n {
			out = append(out, e)
		}
	}
	return out
}

// PairEdgeIndex returns the position of e on the path of pr, or -1 if the
// path does not cross e.
func (inst *Instance) PairEdgeIndex(pr Pair, e routing.Edge) int {
	path := inst.Paths[pr]
	for i := 0; i+1 < len(path); i++ {
		if path[i] == e.From && path[i+1] == e.To {
			return i
		}
	}
	return -1
}

// MulticastSize returns the number of nodes in source s's multicast
// structure (|T_s| in Theorem 3): every node on some path from s.
func (inst *Instance) MulticastSize(s graph.NodeID) int {
	nodes := make(map[graph.NodeID]bool)
	for pr, path := range inst.Paths {
		if pr.Source != s {
			continue
		}
		for _, n := range path {
			nodes[n] = true
		}
	}
	return len(nodes)
}

// AggTreeSize returns the number of nodes in destination d's aggregation
// tree (|A_d| in Theorem 3): every node on some path toward d.
func (inst *Instance) AggTreeSize(d graph.NodeID) int {
	nodes := make(map[graph.NodeID]bool)
	for pr, path := range inst.Paths {
		if pr.Dest != d {
			continue
		}
		for _, n := range path {
			nodes[n] = true
		}
	}
	return len(nodes)
}

// Sources returns every node acting as a source, ascending.
func (inst *Instance) Sources() []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	for pr := range inst.Paths {
		if !seen[pr.Source] {
			seen[pr.Source] = true
			out = append(out, pr.Source)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dests returns every destination, ascending.
func (inst *Instance) Dests() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(inst.SpecByDest))
	for d := range inst.SpecByDest {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
