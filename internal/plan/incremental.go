package plan

import (
	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/routing"
)

// UpdateStats quantifies the locality of an incremental re-optimization
// (Corollary 1): how much of the old plan survived and how much state had
// to be pushed back into the network.
type UpdateStats struct {
	// EdgesTotal is the number of edges in the new instance.
	EdgesTotal int
	// EdgesReused is the number of edges whose single-edge inputs were
	// unchanged and whose old solutions were carried over verbatim.
	EdgesReused int
	// EdgesSolved counts fresh single-edge optimizations (new or changed
	// inputs, plus any consistency repairs).
	EdgesSolved int
	// EdgesChangedSolution counts edges whose final solution differs from
	// the old plan (including edges absent from one of the two plans) —
	// the node-state updates that must be disseminated.
	EdgesChangedSolution int
}

// Reoptimize computes the optimal plan for inst while reusing every
// single-edge solution of old whose inputs (the pairs crossing the edge
// and the unit weights of their endpoints) are unchanged. Corollary 1
// guarantees the reused solutions remain part of the new optimum, so the
// result is identical to Optimize(inst) — tests assert this — at a
// fraction of the work.
func Reoptimize(old *Plan, inst *Instance) (*Plan, *UpdateStats, error) {
	return ReoptimizeWithPrices(old, inst, nil)
}

// ReoptimizeWithPrices is Reoptimize under per-node energy prices (see
// Plan.Prices): the new plan is identical to OptimizeWithPrices(inst,
// prices). An old solution is only reused when, additionally, every
// endpoint of its edge has the same effective price in both plans — a node
// whose price moved re-poses its edges' cover problems.
func ReoptimizeWithPrices(old *Plan, inst *Instance, prices map[graph.NodeID]int64) (*Plan, *UpdateStats, error) {
	p := &Plan{Inst: inst, Method: MethodOptimal, Sol: make(map[routing.Edge]*EdgeSolution, len(inst.EdgeList)), Prices: prices}
	stats := &UpdateStats{EdgesTotal: len(inst.EdgeList)}
	var sc *edgeScratch
	for _, e := range inst.EdgeList {
		if old != nil && sameEdgeInputs(old.Inst, inst, e) && sameEdgePrices(old.Prices, prices, inst, e) {
			if prev, ok := old.Sol[e]; ok && len(prev.ForbiddenRaw) == 0 {
				// Carry the old solution over by reference (copy-on-write:
				// the repair loop clones before mutating a shared solution),
				// so a mostly-unchanged reoptimization copies nothing.
				prev.shared.Store(true)
				p.Sol[e] = prev
				stats.EdgesReused++
				continue
			}
		}
		if sc == nil {
			sc = getEdgeScratch()
			defer putEdgeScratch(sc)
		}
		sol, err := solveEdge(inst, e, nil, prices, sc)
		if err != nil {
			return nil, nil, err
		}
		p.Sol[e] = sol
		stats.EdgesSolved++
	}
	repairsBefore := p.Repairs
	if err := p.repairLoop(); err != nil {
		return nil, nil, err
	}
	stats.EdgesSolved += p.Repairs - repairsBefore
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if old != nil {
		stats.EdgesChangedSolution = countChangedSolutions(old, p)
	} else {
		stats.EdgesChangedSolution = len(inst.EdgeList)
	}
	return p, stats, nil
}

// sameEdgeInputs reports whether edge e poses the identical single-edge
// problem in both instances: same pair set and same unit weights for every
// endpoint.
func sameEdgeInputs(oldInst, newInst *Instance, e routing.Edge) bool {
	a, b := oldInst.EdgePairs[e], newInst.EdgePairs[e]
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	// Destination record weights depend on the aggregation function;
	// compare them too. (Raw unit weights are a global constant.) Iterating
	// the pair list revisits destinations but allocates nothing, unlike
	// materializing EdgeDests.
	for _, pr := range b {
		oldSpec, ok := oldInst.SpecByDest[pr.Dest]
		if !ok {
			return false
		}
		if agg.UnitBytes(oldSpec.Func) != agg.UnitBytes(newInst.SpecByDest[pr.Dest].Func) {
			return false
		}
	}
	return true
}

// sameEdgePrices reports whether every endpoint of e's cover problem has
// the same effective energy price under both price maps.
func sameEdgePrices(oldPrices, newPrices map[graph.NodeID]int64, inst *Instance, e routing.Edge) bool {
	for _, pr := range inst.EdgePairs[e] {
		if priceOf(oldPrices, pr.Source) != priceOf(newPrices, pr.Source) {
			return false
		}
		if priceOf(oldPrices, pr.Dest) != priceOf(newPrices, pr.Dest) {
			return false
		}
	}
	return true
}

func cloneSolution(s *EdgeSolution) *EdgeSolution {
	c := &EdgeSolution{
		Raw:      make(map[graph.NodeID]bool, len(s.Raw)),
		Agg:      make(map[graph.NodeID]bool, len(s.Agg)),
		Resolves: s.Resolves,
	}
	for k := range s.Raw {
		c.Raw[k] = true
	}
	for k := range s.Agg {
		c.Agg[k] = true
	}
	if len(s.ForbiddenRaw) > 0 {
		c.ForbiddenRaw = make(map[graph.NodeID]bool, len(s.ForbiddenRaw))
		for k := range s.ForbiddenRaw {
			c.ForbiddenRaw[k] = true
		}
	}
	return c
}

func sameSolution(a, b *EdgeSolution) bool {
	if a == b {
		return true // reused by reference during Reoptimize
	}
	if len(a.Raw) != len(b.Raw) || len(a.Agg) != len(b.Agg) {
		return false
	}
	for k := range a.Raw {
		if !b.Raw[k] {
			return false
		}
	}
	for k := range a.Agg {
		if !b.Agg[k] {
			return false
		}
	}
	return true
}

func countChangedSolutions(old, new_ *Plan) int {
	changed := 0
	seen := make(map[routing.Edge]bool)
	for e, sol := range new_.Sol {
		seen[e] = true
		prev, ok := old.Sol[e]
		if !ok || !sameSolution(prev, sol) {
			changed++
		}
	}
	for e := range old.Sol {
		if !seen[e] {
			changed++ // edge disappeared; its nodes must drop state
		}
	}
	return changed
}
