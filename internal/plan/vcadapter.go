package plan

import "m2m/internal/vcover"

// vcoverProblem is a thin builder around vcover.Problem keeping solveEdge
// readable.
type vcoverProblem struct {
	p vcover.Problem
}

func (w *vcoverProblem) addU(key int, weight int64) {
	w.p.U = append(w.p.U, vcover.Vertex{Key: key, Weight: weight})
}

func (w *vcoverProblem) addV(key int, weight int64) {
	w.p.V = append(w.p.V, vcover.Vertex{Key: key, Weight: weight})
}

func (w *vcoverProblem) addEdge(i, j int) {
	w.p.Edges = append(w.p.Edges, [2]int{i, j})
}

func (w *vcoverProblem) solve(forbidU []bool) (*vcover.Solution, error) {
	return vcover.SolveConstrained(&w.p, forbidU)
}
