package plan

import (
	"fmt"
	"sort"

	"m2m/internal/graph"
	"m2m/internal/routing"
)

// The four per-node tables of Section 3 ("Implementing Node Behavior").
// Table contents are computed out-of-network from the plan and disseminated
// to the nodes; the executor consults them at runtime.

// RawEntry says: forward source Source's raw value into outgoing message
// group Out.
type RawEntry struct {
	Source graph.NodeID
	Out    routing.Edge
}

// PreAggEntry says: apply pre-aggregation function w_{Dest,Source} to
// Source's raw value at this node (the node holds the per-source weight).
type PreAggEntry struct {
	Source, Dest graph.NodeID
}

// PartialEntry says: combine Inputs partial-aggregate/pre-aggregated
// contributions for Dest and, unless Local, send the merged record into
// message group Out. Local entries belong to the destination itself, which
// applies the evaluator instead.
type PartialEntry struct {
	Dest   graph.NodeID
	Inputs int
	Out    routing.Edge
	Local  bool
}

// OutgoingEntry says: message group for edge Out carries Units message
// units to neighbor Out.To.
type OutgoingEntry struct {
	Out   routing.Edge
	Units int
}

// Tables is the complete in-network state of a plan, per node.
type Tables struct {
	Raw      map[graph.NodeID][]RawEntry
	PreAgg   map[graph.NodeID][]PreAggEntry
	Partial  map[graph.NodeID][]PartialEntry
	Outgoing map[graph.NodeID][]OutgoingEntry
}

// contribution describes where one pair's value enters a record: either an
// upstream record (keyed by in-edge) or a raw/local pre-aggregation.
type contribKey struct {
	record bool
	edge   routing.Edge // meaningful when record
	source graph.NodeID // meaningful when !record
}

// recordInputs returns the distinct contribution keys for destination d's
// record being assembled at node n from the given pairs, where each pair's
// path reaches n at edge index idx (idx 0 means the pair's source is n).
func (p *Plan) recordInputs(n, d graph.NodeID, pairs []Pair) ([]contribKey, error) {
	seen := make(map[contribKey]bool)
	var keys []contribKey
	add := func(k contribKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, pr := range pairs {
		path := p.Inst.Paths[pr]
		// Locate n on the pair's path.
		pos := -1
		for i, v := range path {
			if v == n {
				pos = i
				break
			}
		}
		if pos == -1 {
			return nil, fmt.Errorf("plan: node %d not on path of pair %d→%d", n, pr.Source, pr.Dest)
		}
		if pos == 0 {
			// The source itself: local reading, pre-aggregated here.
			add(contribKey{source: pr.Source})
			continue
		}
		in := routing.Edge{From: path[pos-1], To: path[pos]}
		if p.Sol[in].Agg[d] {
			add(contribKey{record: true, edge: in})
		} else {
			// The pair crossed the in-edge raw; pre-aggregate here.
			add(contribKey{source: pr.Source})
		}
	}
	return keys, nil
}

// BuildTables materializes the per-node state of the plan.
func (p *Plan) BuildTables() (*Tables, error) {
	t := &Tables{
		Raw:      make(map[graph.NodeID][]RawEntry),
		PreAgg:   make(map[graph.NodeID][]PreAggEntry),
		Partial:  make(map[graph.NodeID][]PartialEntry),
		Outgoing: make(map[graph.NodeID][]OutgoingEntry),
	}
	// Pre-aggregation entries are deduplicated per node: the same (s, d)
	// weight may legitimately be stored at more than one node if a record
	// is dropped and the value re-enters raw downstream (possible only in
	// repaired or baseline plans).
	type preKey struct {
		n graph.NodeID
		e PreAggEntry
	}
	preAggSeen := make(map[preKey]bool)
	addPre := func(n graph.NodeID, e PreAggEntry) {
		k := preKey{n: n, e: e}
		if !preAggSeen[k] {
			preAggSeen[k] = true
			t.PreAgg[n] = append(t.PreAgg[n], e)
		}
	}

	for _, e := range p.Inst.EdgeList {
		n := e.From
		sol := p.Sol[e]
		units := 0
		for _, s := range sortedKeys(sol.Raw) {
			t.Raw[n] = append(t.Raw[n], RawEntry{Source: s, Out: e})
			units++
		}
		for _, d := range sortedKeys(sol.Agg) {
			var pairs []Pair
			for _, pr := range p.Inst.EdgePairs[e] {
				if pr.Dest == d {
					pairs = append(pairs, pr)
				}
			}
			keys, err := p.recordInputs(n, d, pairs)
			if err != nil {
				return nil, err
			}
			for _, k := range keys {
				if !k.record {
					addPre(n, PreAggEntry{Source: k.source, Dest: d})
				}
			}
			t.Partial[n] = append(t.Partial[n], PartialEntry{Dest: d, Inputs: len(keys), Out: e})
			units++
		}
		if units > 0 {
			t.Outgoing[n] = append(t.Outgoing[n], OutgoingEntry{Out: e, Units: units})
		}
	}

	// Each destination's final merge (the Local partial entry; the
	// evaluator lives with it).
	for _, d := range p.Inst.Dests() {
		var pairs []Pair
		for _, s := range p.Inst.SpecByDest[d].Func.Sources() {
			pairs = append(pairs, Pair{Source: s, Dest: d})
		}
		keys, err := p.recordInputs(d, d, pairs)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			if !k.record {
				addPre(d, PreAggEntry{Source: k.source, Dest: d})
			}
		}
		t.Partial[d] = append(t.Partial[d], PartialEntry{Dest: d, Inputs: len(keys), Local: true})
	}

	for n := range t.Partial {
		entries := t.Partial[n]
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Dest != entries[j].Dest {
				return entries[i].Dest < entries[j].Dest
			}
			return !entries[i].Local && entries[j].Local
		})
	}
	for n := range t.PreAgg {
		entries := t.PreAgg[n]
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Dest != entries[j].Dest {
				return entries[i].Dest < entries[j].Dest
			}
			return entries[i].Source < entries[j].Source
		})
	}
	return t, nil
}

// TotalEntries counts every table entry in the network — the state bound
// of Theorem 3.
func (t *Tables) TotalEntries() int {
	total := 0
	for _, es := range t.Raw {
		total += len(es)
	}
	for _, es := range t.PreAgg {
		total += len(es)
	}
	for _, es := range t.Partial {
		total += len(es)
	}
	for _, es := range t.Outgoing {
		total += len(es)
	}
	return total
}

// Approximate per-entry dissemination sizes in bytes: node tags are 2 B,
// weights 4 B, counts 1 B.
const (
	rawEntryBytes      = 2 + 2     // source tag + message group
	preAggEntryBytes   = 2 + 2 + 4 // source + dest + weight
	partialEntryBytes  = 2 + 1 + 2 // dest + input count + message group
	outgoingEntryBytes = 2 + 1 + 2 // group + unit count + recipient
)

// StateBytes estimates the total bytes of table state disseminated into
// the network.
func (t *Tables) StateBytes() int {
	total := 0
	for _, es := range t.Raw {
		total += len(es) * rawEntryBytes
	}
	for _, es := range t.PreAgg {
		total += len(es) * preAggEntryBytes
	}
	for _, es := range t.Partial {
		total += len(es) * partialEntryBytes
	}
	for _, es := range t.Outgoing {
		total += len(es) * outgoingEntryBytes
	}
	return total
}

// NodeEntries counts the table entries stored at node n.
func (t *Tables) NodeEntries(n graph.NodeID) int {
	return len(t.Raw[n]) + len(t.PreAgg[n]) + len(t.Partial[n]) + len(t.Outgoing[n])
}
