package plan

import (
	"math/rand"
	"testing"

	"m2m/internal/graph"
)

func TestTablesFigure1C(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := p.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	// Node i (4) forwards a raw and creates records for k and l.
	if len(tab.Raw[4]) != 1 || tab.Raw[4][0].Source != 0 {
		t.Errorf("Raw[i] = %v", tab.Raw[4])
	}
	var kEntry, lEntry *PartialEntry
	for i := range tab.Partial[4] {
		e := &tab.Partial[4][i]
		switch e.Dest {
		case 6:
			kEntry = e
		case 7:
			lEntry = e
		}
	}
	if kEntry == nil || lEntry == nil {
		t.Fatalf("Partial[i] = %v", tab.Partial[4])
	}
	// k's record at i merges pre-aggregated a,b,c,d = 4 inputs;
	// l's merges a,b,c = 3 inputs.
	if kEntry.Inputs != 4 || lEntry.Inputs != 3 {
		t.Errorf("k inputs = %d, l inputs = %d", kEntry.Inputs, lEntry.Inputs)
	}
	// i pre-aggregates a,b,c,d for k and a,b,c for l: 7 entries.
	if len(tab.PreAgg[4]) != 7 {
		t.Errorf("PreAgg[i] = %v", tab.PreAgg[4])
	}
	// i sends one message group (edge i→j) carrying 3 units.
	if len(tab.Outgoing[4]) != 1 || tab.Outgoing[4][0].Units != 3 {
		t.Errorf("Outgoing[i] = %v", tab.Outgoing[4])
	}
	// Destination m (8) receives a raw and pre-aggregates it locally.
	var mLocal *PartialEntry
	for i := range tab.Partial[8] {
		if tab.Partial[8][i].Local {
			mLocal = &tab.Partial[8][i]
		}
	}
	if mLocal == nil || mLocal.Inputs != 1 {
		t.Errorf("Partial[m] = %v", tab.Partial[8])
	}
	if len(tab.PreAgg[8]) != 1 || tab.PreAgg[8][0].Source != 0 {
		t.Errorf("PreAgg[m] = %v", tab.PreAgg[8])
	}
	// Destinations k and l receive ready records: one local entry with one
	// input, no pre-aggregation.
	for _, d := range []graph.NodeID{6, 7} {
		entries := tab.Partial[d]
		if len(entries) != 1 || !entries[0].Local || entries[0].Inputs != 1 {
			t.Errorf("Partial[%d] = %v", d, entries)
		}
		if len(tab.PreAgg[d]) != 0 {
			t.Errorf("PreAgg[%d] = %v", d, tab.PreAgg[d])
		}
	}
}

func TestStateBoundTheorem3(t *testing.T) {
	// Total optimal-plan state must be within a constant factor of
	// min(Σ|T_s|, Σ|A_d|).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 45, 8, 6, sharedRouter(t))
		p, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := p.BuildTables()
		if err != nil {
			t.Fatal(err)
		}
		sumT, sumA := 0, 0
		for _, s := range inst.Sources() {
			sumT += inst.MulticastSize(s)
		}
		for _, d := range inst.Dests() {
			sumA += inst.AggTreeSize(d)
		}
		bound := sumT
		if sumA < bound {
			bound = sumA
		}
		if got := tab.TotalEntries(); got > 4*bound {
			t.Errorf("trial %d: state %d entries exceeds 4·min(Σ|T_s|=%d, Σ|A_d|=%d)",
				trial, got, sumT, sumA)
		}
		if tab.StateBytes() <= 0 {
			t.Error("StateBytes not positive")
		}
	}
}

func TestStateOptimalAtMostBaselines(t *testing.T) {
	// The paper's Theorem 3 intuition: optimal-plan state is on the order
	// of the cheaper of the two pure approaches. Check a generous factor.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		inst := randomInstance(t, rng, 40, 6, 6, sharedRouter(t))
		opt, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		optTab, err := opt.BuildTables()
		if err != nil {
			t.Fatal(err)
		}
		mcTab, err := Multicast(inst).BuildTables()
		if err != nil {
			t.Fatal(err)
		}
		agTab, err := AggregateASAP(inst).BuildTables()
		if err != nil {
			t.Fatal(err)
		}
		min := mcTab.TotalEntries()
		if agTab.TotalEntries() < min {
			min = agTab.TotalEntries()
		}
		if got := optTab.TotalEntries(); got > 2*min {
			t.Errorf("trial %d: optimal state %d > 2·min(baseline state %d)", trial, got, min)
		}
	}
}

func TestTablesInputsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst := randomInstance(t, rng, 30, 5, 5, reverseRouter)
	for _, mk := range []func() (*Plan, error){
		func() (*Plan, error) { return Optimize(inst) },
		func() (*Plan, error) { return Multicast(inst), nil },
		func() (*Plan, error) { return AggregateASAP(inst), nil },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		tab, err := p.BuildTables()
		if err != nil {
			t.Fatal(err)
		}
		for n, entries := range tab.Partial {
			for _, e := range entries {
				if e.Inputs <= 0 {
					t.Errorf("%s: node %d has partial entry with %d inputs", p.Method, n, e.Inputs)
				}
			}
		}
		// Every destination must have exactly one local partial entry.
		for _, d := range inst.Dests() {
			locals := 0
			for _, e := range tab.Partial[d] {
				if e.Local {
					locals++
				}
			}
			if locals != 1 {
				t.Errorf("%s: destination %d has %d local entries", p.Method, d, locals)
			}
		}
	}
}

func TestNodeEntriesSumsToTotal(t *testing.T) {
	inst := fig1cNetwork(t)
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := p.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for n := 0; n < inst.Net.Len(); n++ {
		sum += tab.NodeEntries(graph.NodeID(n))
	}
	if sum != tab.TotalEntries() {
		t.Errorf("per-node sum %d != total %d", sum, tab.TotalEntries())
	}
}
