package invariant

import (
	"testing"

	"m2m"
)

// TestScenarioInvariantsSmoke is the in-package slice of the CI fuzz
// smoke: a block of seeded scenarios, every checker enabled, zero
// violations expected. The cmd/m2mfuzz CI job runs a larger block under
// the race detector.
func TestScenarioInvariantsSmoke(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 40
	}
	for seed := int64(1); seed <= n; seed++ {
		rep := CheckSeed(seed)
		if rep.Failed() {
			t.Errorf("%s", rep.String())
		}
	}
}

// Pinned regressions: seeds whose scenarios found real bugs during the
// first soak. Each must now check clean.
func TestPinnedSeeds(t *testing.T) {
	pinned := map[int64]string{
		// Condemnation under the shared-tree router: removing a failed
		// node leaves an isolated graph slot, and NewSharedTree used to
		// reject the whole topology as disconnected.
		44: "shared-tree replan after condemnation",
		// Same failure mode through the min-degree router, plus a
		// Parent[-1] panic seeding its BFS tree.
		10: "min-degree replan after condemnation",
		// Byzantine windows with pulse readings: an honest spike is
		// indistinguishable from a lie, so the composition is now
		// excluded by the generator and Validate.
		55: "byzantine composition excludes pulse readings",
		79: "byzantine composition excludes pulse readings",
		// The 10k soak's second wave: independent random walks drift
		// into persistent excursions that the excision persistence
		// window cannot filter, so walk readings are excluded from
		// byzantine scenarios too.
		2529: "byzantine composition excludes walk readings",
		7635: "byzantine composition excludes walk readings",
		// Battery brown-outs sever a workload endpoint the session has
		// no grounds to prune; the replan's routing error is legitimate
		// and the classifier must credit in-flight condemnations.
		8449: "severed endpoint aborts replan under brown-out",
		9199: "severed endpoint aborts replan under brown-out",
	}
	for seed, why := range pinned {
		rep := CheckSeed(seed)
		if rep.Failed() {
			t.Errorf("seed %d (%s):\n%s", seed, why, rep.String())
		}
	}
}

// mutateValues perturbs every destination value, which must trip the
// exactness checker on any scenario with a fresh, non-transition round.
func mutateValues(step *m2m.ResilientStep) {
	for d := range step.Values {
		step.Values[d] += 1e6
	}
}

// TestMutationCaught is the checker-of-the-checkers: a deliberately
// corrupted step must produce a violation, and the shrinker must reduce
// the scenario to a JSON repro that still fails after a round trip.
func TestMutationCaught(t *testing.T) {
	sc, err := m2m.GenerateScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MutateStep: mutateValues}
	rep := CheckWith(sc, opts)
	if !rep.Failed() {
		t.Fatal("corrupted values not caught by any checker")
	}
	sawExactness := false
	for _, v := range rep.Violations {
		if v.Checker == "exactness" {
			sawExactness = true
		}
	}
	if !sawExactness {
		t.Fatalf("corrupted values caught by the wrong checker:\n%s", rep.String())
	}

	min, minRep := Shrink(sc, opts, 120)
	if !minRep.Failed() {
		t.Fatal("shrinker lost the failure")
	}
	if scenarioSize(min) > scenarioSize(sc) {
		t.Fatalf("shrinker grew the scenario: %d > %d", scenarioSize(min), scenarioSize(sc))
	}

	// The emitted repro replays: JSON round trip, then re-check.
	data, err := min.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := m2m.DecodeScenario(data)
	if err != nil {
		t.Fatalf("repro does not decode: %v", err)
	}
	again := CheckWith(back, opts)
	if !again.Failed() {
		t.Fatal("decoded repro no longer fails")
	}
}

// TestShrinkDropsIrrelevantDimensions checks the shrinker actually
// simplifies: a mutation that fires regardless of faults must shrink to
// a scenario with no fault schedules left.
func TestShrinkDropsIrrelevantDimensions(t *testing.T) {
	var sc *m2m.Scenario
	for seed := int64(1); seed <= 200; seed++ {
		c, err := m2m.GenerateScenario(seed)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a scenario with several active dimensions so there is
		// something to drop.
		if c.Loss > 0 && len(c.Crashes) > 0 && (c.Async != nil || c.Partition != nil) {
			sc = c
			break
		}
	}
	if sc == nil {
		t.Fatal("no multi-dimension scenario in the first 200 seeds")
	}
	opts := Options{MutateStep: mutateValues}
	min, minRep := Shrink(sc, opts, 150)
	if !minRep.Failed() {
		t.Fatal("shrinker lost the failure")
	}
	if min.Loss != 0 || len(min.Crashes) > 0 || min.Async != nil || min.Partition != nil {
		data, _ := min.EncodeJSON()
		t.Errorf("fault dimensions survived shrinking a fault-independent failure:\n%s", data)
	}
	if min.Rounds > sc.Rounds/2 {
		t.Errorf("rounds not reduced: %d -> %d", sc.Rounds, min.Rounds)
	}
}

// TestCleanScenarioNotShrunk: Shrink on a passing scenario returns it
// unchanged with a clean report.
func TestCleanScenarioNotShrunk(t *testing.T) {
	sc, err := m2m.GenerateScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	min, rep := Shrink(sc, Options{}, 10)
	if rep.Failed() {
		t.Fatalf("clean scenario reported failing:\n%s", rep.String())
	}
	if scenarioSize(min) != scenarioSize(sc) {
		t.Error("clean scenario was mutated by the shrinker")
	}
}
