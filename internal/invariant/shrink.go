package invariant

import "m2m"

// Shrink minimizes a failing scenario to a smaller one that still fails
// the same checker options: it greedily drops whole fault dimensions,
// bisects fault schedules, halves the round count and simplifies the
// workload knobs, accepting a candidate only when it is strictly
// smaller and still produces a violation. The result — together with
// its JSON encoding (Scenario.EncodeJSON) — is the replayable repro.
// budget caps the number of candidate executions (default 200).
//
// If sc does not fail at all, Shrink returns it unchanged with its
// clean report.
func Shrink(sc *m2m.Scenario, opts Options, budget int) (*m2m.Scenario, *Report) {
	if budget <= 0 {
		budget = 200
	}
	best := cloneScenario(sc)
	bestRep := CheckWith(best, opts)
	execs := 1
	if !bestRep.Failed() {
		return best, bestRep
	}
	for improved := true; improved && execs < budget; {
		improved = false
		for _, cand := range shrinkCandidates(best) {
			if scenarioSize(cand) >= scenarioSize(best) {
				continue
			}
			if cand.Validate() != nil {
				continue
			}
			if execs >= budget {
				break
			}
			rep := CheckWith(cand, opts)
			execs++
			if rep.Failed() {
				best, bestRep = cand, rep
				improved = true
				break // regenerate candidates from the smaller scenario
			}
		}
	}
	return best, bestRep
}

// scenarioSize is the strictly-decreasing metric the greedy loop
// minimizes: rounds, schedule entries, and active dimensions.
func scenarioSize(sc *m2m.Scenario) int {
	s := sc.Rounds
	s += 2 * (len(sc.Outages) + len(sc.Crashes) + len(sc.Depletions) + len(sc.Byzantine))
	for _, on := range []bool{sc.Async != nil, sc.Partition != nil, sc.Collide != nil, sc.Battery != nil} {
		if on {
			s += 4
		}
	}
	if sc.Sketch != "" {
		s++
	}
	if sc.Loss > 0 {
		s++
	}
	if sc.Readings != "const" {
		s++
	}
	if sc.MaxRetries+sc.MissThreshold+sc.DetourBudget > 0 {
		s++
	}
	return s
}

// cloneScenario deep-copies a scenario through its JSON codec.
func cloneScenario(sc *m2m.Scenario) *m2m.Scenario {
	data, err := sc.EncodeJSON()
	if err == nil {
		if back, derr := m2m.DecodeScenario(data); derr == nil {
			return back
		}
	}
	c := *sc // fallback for scenarios the codec rejects; callers only mutate what they own
	return &c
}

// shrinkCandidates proposes one-mutation simplifications of sc, most
// aggressive first.
func shrinkCandidates(sc *m2m.Scenario) []*m2m.Scenario {
	var out []*m2m.Scenario
	add := func(mut func(*m2m.Scenario)) {
		c := cloneScenario(sc)
		mut(c)
		out = append(out, c)
	}

	// Whole dimensions.
	if sc.Async != nil {
		add(func(c *m2m.Scenario) { c.Async = nil })
	}
	if sc.Partition != nil {
		add(func(c *m2m.Scenario) { c.Partition = nil })
	}
	if sc.Collide != nil {
		add(func(c *m2m.Scenario) { c.Collide = nil })
	}
	if sc.Battery != nil {
		add(func(c *m2m.Scenario) { c.Battery = nil })
	}
	if sc.Loss > 0 {
		add(func(c *m2m.Scenario) { c.Loss = 0 })
	}
	if sc.Sketch != "" {
		add(func(c *m2m.Scenario) { c.Sketch = "" })
	}

	// Schedule lists: empty, halves, then single-entry removals for
	// short lists.
	if k := len(sc.Outages); k > 0 {
		add(func(c *m2m.Scenario) { c.Outages = nil })
		if k > 1 {
			add(func(c *m2m.Scenario) { c.Outages = c.Outages[:k/2] })
			add(func(c *m2m.Scenario) { c.Outages = c.Outages[k/2:] })
		}
		if k <= 4 {
			for i := 0; i < k; i++ {
				i := i
				add(func(c *m2m.Scenario) { c.Outages = append(c.Outages[:i:i], c.Outages[i+1:]...) })
			}
		}
	}
	if k := len(sc.Crashes); k > 0 {
		add(func(c *m2m.Scenario) { c.Crashes = nil })
		if k > 1 {
			add(func(c *m2m.Scenario) { c.Crashes = c.Crashes[:k/2] })
			add(func(c *m2m.Scenario) { c.Crashes = c.Crashes[k/2:] })
		}
		if k <= 4 {
			for i := 0; i < k; i++ {
				i := i
				add(func(c *m2m.Scenario) { c.Crashes = append(c.Crashes[:i:i], c.Crashes[i+1:]...) })
			}
		}
	}
	if k := len(sc.Depletions); k > 0 {
		add(func(c *m2m.Scenario) { c.Depletions = nil })
		if k > 1 {
			add(func(c *m2m.Scenario) { c.Depletions = c.Depletions[:k/2] })
			add(func(c *m2m.Scenario) { c.Depletions = c.Depletions[k/2:] })
		}
		if k <= 4 {
			for i := 0; i < k; i++ {
				i := i
				add(func(c *m2m.Scenario) { c.Depletions = append(c.Depletions[:i:i], c.Depletions[i+1:]...) })
			}
		}
	}
	if k := len(sc.Byzantine); k > 0 {
		add(func(c *m2m.Scenario) { c.Byzantine = nil })
		if k > 1 {
			add(func(c *m2m.Scenario) { c.Byzantine = c.Byzantine[:k/2] })
			add(func(c *m2m.Scenario) { c.Byzantine = c.Byzantine[k/2:] })
		}
		if k <= 4 {
			for i := 0; i < k; i++ {
				i := i
				add(func(c *m2m.Scenario) { c.Byzantine = append(c.Byzantine[:i:i], c.Byzantine[i+1:]...) })
			}
		}
	}

	// Fewer rounds, with schedules clamped to the shorter run.
	if sc.Rounds > 2 {
		add(func(c *m2m.Scenario) { clampRounds(c, c.Rounds/2) })
	}

	// Simpler knobs and readings.
	if sc.MaxRetries+sc.MissThreshold+sc.DetourBudget > 0 {
		add(func(c *m2m.Scenario) { c.MaxRetries, c.MissThreshold, c.DetourBudget = 0, 0, 0 })
	}
	if sc.Readings != "const" {
		add(func(c *m2m.Scenario) { c.Readings = "const" })
	}
	return out
}

// clampRounds shortens the run and drops or clamps schedule entries
// that can no longer fire.
func clampRounds(sc *m2m.Scenario, rounds int) {
	if rounds < 2 {
		rounds = 2
	}
	sc.Rounds = rounds
	outages := sc.Outages[:0]
	for _, o := range sc.Outages {
		if o.Start < rounds {
			outages = append(outages, o)
		}
	}
	sc.Outages = outages
	if p := sc.Partition; p != nil && p.Start >= rounds {
		sc.Partition = nil
	}
	crashes := sc.Crashes[:0]
	for _, c := range sc.Crashes {
		if c.Round >= rounds {
			continue
		}
		if c.Revive >= rounds {
			c.Revive = 0 // never revives inside the shorter run: permanent
		}
		crashes = append(crashes, c)
	}
	sc.Crashes = crashes
	depletions := sc.Depletions[:0]
	for _, d := range sc.Depletions {
		if d.Round < rounds {
			depletions = append(depletions, d)
		}
	}
	sc.Depletions = depletions
	byz := sc.Byzantine[:0]
	for _, b := range sc.Byzantine {
		if b.Start < rounds {
			byz = append(byz, b)
		}
	}
	sc.Byzantine = byz
}
