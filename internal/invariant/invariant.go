// Package invariant is the checker suite of the deterministic
// simulation-testing subsystem: it replays a generated scenario
// (internal/chaos) through a live ResilientSession and verifies global
// invariants against every step and once more at session end, against
// ground truth reconstructed independently from the fault schedules.
//
// The per-step checkers:
//
//   - report: every DeliveryReport passes Validate, coverage stays
//     within the destination's spec sources, no schedule-dead source is
//     ever covered, and the Fresh/Stale/Starved tallies match.
//   - exactness: a fresh destination's value equals the out-of-network
//     reference aggregate over the (byzantine-corrupted) readings to
//     relative 1e-9 — which also pins no-liar-influence, since a liar
//     enters the reference only through its own reading.
//   - condemnation: a node declared permanently failed was actually
//     dead (schedule or ledger) or severed from the base within the
//     detection window — no false condemnation.
//   - excision: only scenario liars are ever excised.
//   - quarantine: scenarios with no severing dimension never quarantine.
//   - energy: cumulative session energy minus detour traffic matches the
//     battery ledger exactly (1e-12 scale) until the first brown-out,
//     and bounds it from above afterwards.
//   - epoch: the plan epoch is monotone, and an epoch that never moved
//     implies no fenced or dropped frames.
//   - tdma: in collision-only fault-free scenarios, every scheduled
//     round after the TDMA switch is bit-identical to plain Execute.
//
// At session end the convergence checker rebuilds a plan from scratch on
// the surviving topology and requires the session's incrementally
// maintained plan to encode to byte-identical per-node tables.
package invariant

import (
	"fmt"
	"math"

	"m2m"
	"m2m/internal/routing"
)

// Violation is one invariant failure observed during a checked run.
type Violation struct {
	// Checker names the invariant that fired (e.g. "exactness").
	Checker string `json:"checker"`
	// Round is the 0-based round of the failure, or -1 for end-of-run
	// and build-time failures.
	Round int `json:"round"`
	// Msg describes the failure.
	Msg string `json:"msg"`
}

func (v Violation) String() string {
	if v.Round < 0 {
		return fmt.Sprintf("[%s] %s", v.Checker, v.Msg)
	}
	return fmt.Sprintf("[%s] round %d: %s", v.Checker, v.Round, v.Msg)
}

// Report is the outcome of checking one scenario.
type Report struct {
	// Seed identifies the scenario (its generator seed).
	Seed int64 `json:"seed"`
	// Scenario is the checked scenario, with any derived fields (e.g.
	// battery capacity) pinned by the run.
	Scenario *m2m.Scenario `json:"scenario,omitempty"`
	// Rounds is how many rounds actually executed.
	Rounds int `json:"rounds"`
	// Violations lists every invariant failure, in order of detection.
	Violations []Violation `json:"violations,omitempty"`
}

// Failed reports whether any invariant fired.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) String() string {
	if !r.Failed() {
		return fmt.Sprintf("seed %d: ok (%d rounds)", r.Seed, r.Rounds)
	}
	s := fmt.Sprintf("seed %d: %d violation(s) in %d rounds", r.Seed, len(r.Violations), r.Rounds)
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

func (r *Report) addf(checker string, round int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Checker: checker,
		Round:   round,
		Msg:     fmt.Sprintf(format, args...),
	})
}

// Options tunes a checked run.
type Options struct {
	// MutateStep, when set, perturbs each step before the checkers see
	// it. It exists for mutation-testing the checkers themselves: a
	// deliberately corrupted step must be caught.
	MutateStep func(*m2m.ResilientStep)
	// MaxViolations stops the run once this many violations accumulate
	// (default 8).
	MaxViolations int
}

// checker carries the ground-truth state threaded through a run.
type checker struct {
	run  *m2m.ScenarioRun
	sc   *m2m.Scenario
	sess *m2m.ResilientSession
	inj  *m2m.FaultInjector
	bat  *m2m.Battery

	// byzNodes is the set of scenario liars (any window).
	byzNodes map[m2m.NodeID]bool
	// collideOnly marks scenarios whose only fault dimension is the
	// collision channel: post-switch TDMA rounds must be bit-exact.
	collideOnly bool
	// quiet marks scenarios with no dimension that can kill or sever a
	// node, so any quarantine is a false positive.
	quiet bool
	// lookback is the condemnation-justification window: a condemned
	// node must have been dead or severed within this many rounds.
	lookback int

	// condemned maps declared-dead nodes to their condemnation round;
	// rejoins clear entries.
	condemned map[m2m.NodeID]int
	// history[r] is the ground-truth set of nodes that were dead or
	// severed from the base during round r.
	history []map[m2m.NodeID]bool
	// depletedBefore snapshots ledger-depleted nodes before each round.
	depletedBefore map[m2m.NodeID]bool

	depletedSeen bool
	sumPaidJ     float64 // cumulative EnergyJ minus detours (ledger-debited)
	sumAllJ      float64 // cumulative EnergyJ
	lastEpoch    uint32
	prevTDMA     bool
}

func newChecker(run *m2m.ScenarioRun) *checker {
	sc := run.Scenario
	c := &checker{
		run:            run,
		sc:             sc,
		sess:           run.Session,
		inj:            run.Injector,
		bat:            run.Battery,
		byzNodes:       make(map[m2m.NodeID]bool, len(sc.Byzantine)),
		condemned:      make(map[m2m.NodeID]int),
		depletedBefore: make(map[m2m.NodeID]bool),
		lastEpoch:      1,
	}
	for _, b := range sc.Byzantine {
		c.byzNodes[m2m.NodeID(b.Node)] = true
	}
	noFaults := sc.Loss == 0 && len(sc.Outages) == 0 && sc.Partition == nil &&
		len(sc.Crashes) == 0 && len(sc.Depletions) == 0 &&
		sc.Async == nil && sc.Battery == nil && len(sc.Byzantine) == 0
	c.collideOnly = sc.Collide != nil && noFaults
	c.quiet = sc.Collide == nil && noFaults
	// Condemnation takes at most MissThreshold windows of DetourBudget
	// vindications plus slack; knob value 0 means the session default.
	k, b := sc.MissThreshold, sc.DetourBudget
	if k == 0 {
		k = 3
	}
	if b == 0 {
		b = 5
	}
	c.lookback = k + b + 2
	return c
}

// observeGround records, before round r runs, which nodes are dead per
// ground truth (fault schedule, ledger, prior condemnation) and which
// alive nodes the round's link faults sever from the base station.
func (c *checker) observeGround(round int) {
	g := c.run.Net.Graph
	n := g.Len()
	dead := make(map[m2m.NodeID]bool)
	depleted := make(map[m2m.NodeID]bool)
	for i := 0; i < n; i++ {
		id := m2m.NodeID(i)
		if c.bat != nil && c.bat.Depleted(id) {
			depleted[id] = true
			dead[id] = true
		}
		if c.inj.NodeDead(round, id) {
			dead[id] = true
		}
	}
	for d := range c.condemned {
		dead[d] = true
	}
	c.depletedBefore = depleted

	state := make(map[m2m.NodeID]bool, len(dead))
	for d := range dead {
		state[d] = true
	}
	base := m2m.NodeID(-1)
	for i := 0; i < n; i++ {
		if !dead[m2m.NodeID(i)] {
			base = m2m.NodeID(i)
			break
		}
	}
	if base >= 0 {
		seen := make([]bool, n)
		seen[base] = true
		queue := []m2m.NodeID{base}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if seen[v] || dead[v] || c.linkDown(round, u, v) {
					continue
				}
				seen[v] = true
				queue = append(queue, v)
			}
		}
		for i := 0; i < n; i++ {
			id := m2m.NodeID(i)
			if !dead[id] && !seen[id] {
				state[id] = true // alive but severed
			}
		}
	}
	c.history = append(c.history, state)
}

// linkDown reports whether either direction of {u,v} is cut this round.
func (c *checker) linkDown(round int, u, v m2m.NodeID) bool {
	return c.inj.LinkDown(round, routing.Edge{From: u, To: v}) ||
		c.inj.LinkDown(round, routing.Edge{From: v, To: u})
}

// groundDead is the schedule/ledger/condemnation dead set at a round,
// ignoring link faults.
func (c *checker) groundDead(round int) map[m2m.NodeID]bool {
	n := c.run.Net.Graph.Len()
	dead := make(map[m2m.NodeID]bool)
	for i := 0; i < n; i++ {
		id := m2m.NodeID(i)
		if c.inj.NodeDead(round, id) || (c.bat != nil && c.bat.Depleted(id)) {
			dead[id] = true
		}
	}
	for d := range c.condemned {
		dead[d] = true
	}
	return dead
}

// acceptableError classifies a Step error: the session is expected to
// surface an error (rather than wedge) when ground truth has severed or
// killed its way to an impossible state — the survivors are
// disconnected, the workload pruned empty, or a recovery inside the
// failing step excised a silent node whose absence breaks a routing
// pair. Anything else is a bug.
func (c *checker) acceptableError(round int) bool {
	dead := c.groundDead(round)
	g := c.run.Net.Graph

	alive := 0
	for i := 0; i < g.Len(); i++ {
		if !dead[m2m.NodeID(i)] {
			alive++
		}
	}
	if alive == 0 {
		return true
	}
	// Permanent disconnection (graph minus dead) or transient severance
	// (additionally minus this round's link faults): both legitimately
	// abort a replan or an evacuation beacon.
	if !c.connected(round, dead, false) || !c.connected(round, dead, true) {
		return true
	}
	// The step that errors never returns, so condemnations it performed
	// are invisible to us: the session may already have removed nodes
	// that ground truth still counts merely as severed. Anything dead or
	// severed inside the condemnation window is fair game for such an
	// in-flight excision. Crucially, the session only prunes endpoints
	// it has itself declared dead — a destination that browns out
	// silently stays in the workload and legitimately breaks the next
	// replan's routing. So the error is acceptable if removing the
	// whole condemnable set disconnects the survivors, or if a spec the
	// session still holds references a condemnable endpoint the session
	// has not pruned.
	condemnable := make(map[m2m.NodeID]bool, len(dead))
	for d := range dead {
		condemnable[d] = true
	}
	sessDead := make(map[m2m.NodeID]bool)
	for _, d := range c.sess.DeadNodes() {
		condemnable[d] = true
		sessDead[d] = true
	}
	lo := len(c.history) - c.lookback
	if lo < 0 {
		lo = 0
	}
	for r := lo; r < len(c.history); r++ {
		for id := range c.history[r] {
			condemnable[id] = true
		}
	}
	if !c.connected(round, condemnable, false) || !c.connected(round, condemnable, true) {
		return true
	}
	liveSpec := false
	for _, sp := range c.sess.Workload() {
		if sessDead[sp.Dest] {
			continue // the planner prunes this spec itself
		}
		if condemnable[sp.Dest] {
			return true
		}
		for _, s := range sp.Func.Sources() {
			if sessDead[s] {
				continue
			}
			if condemnable[s] {
				return true
			}
			liveSpec = true
		}
	}
	// No spec survives with all endpoints healthy: the workload pruned
	// itself out from under the session.
	return !liveSpec
}

// connected reports whether the non-dead nodes form one component, with
// or without filtering this round's link faults.
func (c *checker) connected(round int, dead map[m2m.NodeID]bool, filterLinks bool) bool {
	g := c.run.Net.Graph
	n := g.Len()
	start := m2m.NodeID(-1)
	alive := 0
	for i := 0; i < n; i++ {
		if !dead[m2m.NodeID(i)] {
			alive++
			if start < 0 {
				start = m2m.NodeID(i)
			}
		}
	}
	if alive == 0 {
		return true
	}
	seen := make([]bool, n)
	seen[start] = true
	reached := 1
	queue := []m2m.NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if seen[v] || dead[v] {
				continue
			}
			if filterLinks && c.linkDown(round, u, v) {
				continue
			}
			seen[v] = true
			reached++
			queue = append(queue, v)
		}
	}
	return reached == alive
}

// closeEnough is the relative-tolerance comparison the value checkers
// use: in-network merge order may differ from the linear reference.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}
