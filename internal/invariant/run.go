package invariant

import (
	"bytes"
	"math"

	"m2m"
	"m2m/internal/agg"
	"m2m/internal/failure"
	"m2m/internal/plan"
	"m2m/internal/routing"
	"m2m/internal/wire"
)

// CheckSeed generates the scenario for a seed and checks it.
func CheckSeed(seed int64) *Report {
	sc, err := m2m.GenerateScenario(seed)
	if err != nil {
		rep := &Report{Seed: seed}
		rep.addf("build", -1, "generating scenario: %v", err)
		return rep
	}
	return Check(sc)
}

// Check runs the scenario through a live session with every invariant
// checker enabled.
func Check(sc *m2m.Scenario) *Report { return CheckWith(sc, Options{}) }

// CheckWith is Check with options (test hooks, violation caps).
func CheckWith(sc *m2m.Scenario, opts Options) *Report {
	rep := &Report{Seed: sc.Seed, Scenario: sc}
	maxV := opts.MaxViolations
	if maxV <= 0 {
		maxV = 8
	}
	run, err := m2m.NewScenarioRun(sc)
	if err != nil {
		rep.addf("build", -1, "building run: %v", err)
		return rep
	}
	c := newChecker(run)
	for i := 0; i < sc.Rounds && len(rep.Violations) < maxV; i++ {
		c.observeGround(i)
		step, err := run.Step()
		if err != nil {
			if !c.acceptableError(i) {
				rep.addf("session-error", i,
					"step failed on a connected topology with a live workload: %v", err)
			}
			rep.Rounds = i
			return rep // the session is not steppable past an error
		}
		if opts.MutateStep != nil {
			opts.MutateStep(step)
		}
		c.checkStep(rep, step)
		rep.Rounds = i + 1
	}
	if len(rep.Violations) < maxV {
		c.checkEnd(rep)
	}
	return rep
}

func (c *checker) checkStep(rep *Report, step *m2m.ResilientStep) {
	round := step.Round
	// Recoveries, excisions and readmissions replan after the round ran,
	// so this step's reports reflect the pre-replan workload; value and
	// spec-membership checks skip such transition steps.
	transition := len(step.Recoveries)+len(step.Excisions)+len(step.Readmissions) > 0

	specs := c.sess.Workload()
	funcs := make(map[m2m.NodeID]m2m.Func, len(specs))
	for _, sp := range specs {
		funcs[sp.Dest] = sp.Func
	}

	c.checkReports(rep, step, funcs, transition)
	if !transition {
		c.checkExactness(rep, step, funcs)
	}
	c.checkCondemnations(rep, step)
	c.checkExcisions(rep, step)
	if c.quiet && step.Quarantined > 0 {
		rep.addf("quarantine", round,
			"%d nodes quarantined in a scenario with no severing fault dimension", step.Quarantined)
	}
	c.checkEnergy(rep, step)
	c.checkEpoch(rep, step)
	c.checkTDMA(rep, step)
	c.prevTDMA = step.TDMA
}

// checkReports validates every delivery report, its membership in the
// current workload, coverage of only ground-truth-live sources, and the
// step's Fresh/Stale/Starved tallies.
func (c *checker) checkReports(rep *Report, step *m2m.ResilientStep, funcs map[m2m.NodeID]m2m.Func, transition bool) {
	round := step.Round
	fresh, stale, starved := 0, 0, 0
	for d, r := range step.Reports {
		if err := r.Validate(); err != nil {
			rep.addf("report", round, "%v", err)
			continue
		}
		if r.Dest != d {
			rep.addf("report", round, "report keyed %d names destination %d", d, r.Dest)
			continue
		}
		switch {
		case r.Fresh:
			fresh++
		case r.Starved:
			starved++
		default:
			stale++
		}
		for _, s := range r.Covered {
			if c.inj.NodeDead(round, s) || c.depletedBefore[s] {
				rep.addf("report", round, "dest %d covers source %d, which was dead this round", d, s)
			}
		}
		if transition {
			continue // the replan already rewrote the spec set
		}
		f, ok := funcs[d]
		if !ok {
			rep.addf("report", round, "report for destination %d, which is not in the workload", d)
			continue
		}
		allowed := make(map[m2m.NodeID]bool)
		for _, s := range f.Sources() {
			allowed[s] = true
		}
		for _, s := range r.Covered {
			if !allowed[s] {
				rep.addf("report", round, "dest %d covers %d, not a source of its function", d, s)
			}
		}
	}
	if fresh != step.Fresh || stale != step.Stale || starved != step.Starved {
		rep.addf("report", round, "tallies fresh/stale/starved %d/%d/%d do not match reports %d/%d/%d",
			step.Fresh, step.Stale, step.Starved, fresh, stale, starved)
	}
}

// checkExactness compares every fresh destination's value against the
// out-of-network reference aggregate over the same (corrupted) readings.
// A liar influences the reference only through its own reading, so this
// also pins the no-liar-influence invariant.
func (c *checker) checkExactness(rep *Report, step *m2m.ResilientStep, funcs map[m2m.NodeID]m2m.Func) {
	round := step.Round
	readings := c.run.Readings()
	if readings == nil {
		return
	}
	for d, r := range step.Reports {
		if !r.Fresh {
			continue
		}
		f, ok := funcs[d]
		if !ok {
			continue // flagged by checkReports
		}
		in := make(map[m2m.NodeID]float64, len(f.Sources()))
		for _, s := range f.Sources() {
			in[s] = c.inj.CorruptReading(round, s, readings[s])
		}
		want, err := agg.Eval(f, in)
		if err != nil {
			rep.addf("exactness", round, "reference aggregate for dest %d: %v", d, err)
			continue
		}
		got, ok := step.Values[d]
		if !ok {
			rep.addf("exactness", round, "fresh dest %d has no value", d)
			continue
		}
		if !closeEnough(got, want) {
			rep.addf("exactness", round, "fresh dest %d reports %v, reference aggregate is %v", d, got, want)
		}
	}
}

// checkCondemnations requires every permanent-failure declaration to be
// justified by ground truth: the node was dead (schedule or ledger) or
// severed from the base station within the detection window.
func (c *checker) checkCondemnations(rep *Report, step *m2m.ResilientStep) {
	round := step.Round
	for _, ev := range step.Recoveries {
		justified := false
		for r := round - c.lookback; r <= round; r++ {
			if r < 0 || r >= len(c.history) {
				continue
			}
			if c.history[r][ev.Dead] {
				justified = true
				break
			}
		}
		if !justified {
			rep.addf("condemnation", round,
				"node %d condemned but never dead or severed in the last %d rounds", ev.Dead, c.lookback)
		}
		c.condemned[ev.Dead] = round
	}
	for _, n := range step.Rejoins {
		delete(c.condemned, n)
	}
}

// checkExcisions requires every excised source to be a scenario liar.
func (c *checker) checkExcisions(rep *Report, step *m2m.ResilientStep) {
	for _, ex := range step.Excisions {
		if !c.byzNodes[ex.Node] {
			rep.addf("excision", step.Round, "honest source %d excised (residual %v)", ex.Node, ex.Residual)
		}
	}
}

// checkEnergy reconciles the session's priced energy with the battery
// ledger: exact until the first brown-out (detours are priced but never
// debited), an upper bound afterwards (a browned-out node's control
// traffic goes unpaid).
func (c *checker) checkEnergy(rep *Report, step *m2m.ResilientStep) {
	c.sumAllJ += step.EnergyJ
	if c.bat == nil {
		return
	}
	if step.DetourJ < 0 || step.DetourJ > step.EnergyJ+1e-9 {
		rep.addf("energy", step.Round, "detour energy %v outside [0, %v]", step.DetourJ, step.EnergyJ)
	}
	c.sumPaidJ += step.EnergyJ - step.DetourJ
	if len(step.Depleted) > 0 {
		c.depletedSeen = true
	}
	spent := c.bat.TotalSpentJ()
	tol := 1e-9 + 1e-12*c.sumPaidJ
	if c.depletedSeen {
		if spent > c.sumPaidJ+tol {
			rep.addf("energy", step.Round,
				"ledger spent %v exceeds priced non-detour energy %v", spent, c.sumPaidJ)
		}
	} else if math.Abs(spent-c.sumPaidJ) > tol {
		rep.addf("energy", step.Round,
			"ledger spent %v != priced non-detour energy %v (diff %v)", spent, c.sumPaidJ, spent-c.sumPaidJ)
	}
}

// checkEpoch enforces plan-epoch sanity: monotone, and an epoch that
// never moved implies no fenced or dropped frames anywhere.
func (c *checker) checkEpoch(rep *Report, step *m2m.ResilientStep) {
	ep := c.sess.PlanEpoch()
	if ep < c.lastEpoch {
		rep.addf("epoch", step.Round, "plan epoch moved backwards: %d -> %d", c.lastEpoch, ep)
	}
	if ep == 1 && (step.EpochDropped != 0 || step.EpochLag != 0) {
		rep.addf("epoch", step.Round,
			"no replan ever happened but %d frames dropped, %d nodes lagging", step.EpochDropped, step.EpochLag)
	}
	c.lastEpoch = ep
}

// checkTDMA holds collision-only fault-free scenarios to the scheduled
// executor's contract: once the session has switched, every round is
// bit-identical to a plain synchronous Execute of the same plan.
func (c *checker) checkTDMA(rep *Report, step *m2m.ResilientStep) {
	if !c.collideOnly || !c.prevTDMA {
		return
	}
	round := step.Round
	want, err := m2m.Execute(c.sess.CurrentPlan(), c.run.Net, c.run.Readings())
	if err != nil {
		rep.addf("tdma", round, "reference execution: %v", err)
		return
	}
	for d, r := range step.Reports {
		if !r.Fresh {
			rep.addf("tdma", round, "dest %d not fresh in a fault-free scheduled round", d)
			continue
		}
		if step.Values[d] != want.Values[d] {
			rep.addf("tdma", round, "scheduled value for dest %d is %v, plain execution gives %v",
				d, step.Values[d], want.Values[d])
		}
	}
}

// checkEnd runs the end-of-session invariants: total-energy accounting
// and post-heal convergence — the session's incrementally maintained
// plan must encode byte-identically to a plan built from scratch on the
// surviving topology with the same router, prices and workload.
func (c *checker) checkEnd(rep *Report) {
	if !closeEnough(c.sess.TotalEnergyJ(), c.sumAllJ) {
		rep.addf("energy", -1, "session total %v J != summed step energy %v J",
			c.sess.TotalEnergyJ(), c.sumAllJ)
	}

	g := c.run.Net.Graph
	deadList := c.sess.DeadNodes()
	dead := make(map[m2m.NodeID]bool, len(deadList))
	for _, d := range deadList {
		var err error
		if g, err = failure.RemoveNode(g, d); err != nil {
			rep.addf("convergence", -1, "removing dead node %d: %v", d, err)
			return
		}
		dead[d] = true
	}
	specs := c.sess.Workload()
	if len(specs) == 0 {
		rep.addf("convergence", -1, "session finished with an empty workload")
		return
	}
	hot := make(map[m2m.NodeID]bool)
	for _, n := range c.sess.EvacuatedNodes() {
		if !dead[n] {
			hot[n] = true
		}
	}
	var inst *plan.Instance
	var err error
	if len(hot) > 0 {
		// The scenario generator never overrides the evacuation penalty,
		// so the session runs with the documented default of 8.
		wg, werr := failure.EvacuationGraph(g, hot, 8)
		if werr != nil {
			rep.addf("convergence", -1, "evacuation graph: %v", werr)
			return
		}
		inst, err = plan.NewInstance(wg, routing.NewWeightedReversePath(wg), specs)
	} else {
		net2 := &m2m.Network{Layout: c.run.Net.Layout, Graph: g, Radio: c.run.Net.Radio}
		inst, err = net2.NewInstance(specs, c.run.Kind)
	}
	if err != nil {
		rep.addf("convergence", -1, "from-scratch instance: %v", err)
		return
	}
	scratch, err := plan.OptimizeWithPrices(inst, c.sess.EnergyPrices())
	if err != nil {
		rep.addf("convergence", -1, "from-scratch plan: %v", err)
		return
	}
	sessPlan := c.sess.CurrentPlan()
	sessTab, err := sessPlan.BuildTables()
	if err != nil {
		rep.addf("convergence", -1, "session tables: %v", err)
		return
	}
	scratchTab, err := scratch.BuildTables()
	if err != nil {
		rep.addf("convergence", -1, "from-scratch tables: %v", err)
		return
	}
	differ := 0
	for i := 0; i < g.Len(); i++ {
		n := m2m.NodeID(i)
		got, gerr := wire.EncodeNodeTables(sessPlan.Inst, sessTab, n)
		if gerr != nil {
			rep.addf("convergence", -1, "encoding session tables for node %d: %v", n, gerr)
			return
		}
		want, werr := wire.EncodeNodeTables(inst, scratchTab, n)
		if werr != nil {
			rep.addf("convergence", -1, "encoding from-scratch tables for node %d: %v", n, werr)
			return
		}
		if !bytes.Equal(got, want) {
			differ++
		}
	}
	if differ > 0 {
		rep.addf("convergence", -1,
			"session plan differs from a from-scratch plan on the surviving topology at %d node(s)", differ)
	}
}
