// Package tablefmt renders experiment results as aligned text tables and
// CSV — the harness's counterpart to the paper's figures.
package tablefmt

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result set: one row per x-value, one column per
// series (algorithm).
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	rows    []row
}

type row struct {
	x float64
	y []float64
}

// New returns an empty table with the given metadata.
func New(title, xLabel string, columns ...string) *Table {
	return &Table{Title: title, XLabel: xLabel, Columns: columns}
}

// AddRow appends one x-value with one y per column. It panics on column
// count mismatches — a programming error in the harness.
func (t *Table) AddRow(x float64, ys ...float64) {
	if len(ys) != len(t.Columns) {
		panic(fmt.Sprintf("tablefmt: row has %d values for %d columns", len(ys), len(t.Columns)))
	}
	t.rows = append(t.rows, row{x: x, y: append([]float64(nil), ys...)})
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the x and y values of row i.
func (t *Table) Row(i int) (float64, []float64) {
	r := t.rows[i]
	return r.x, append([]float64(nil), r.y...)
}

// Column returns the series values of the named column, or nil if absent.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx == -1 {
		return nil
	}
	out := make([]float64, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.y[idx]
	}
	return out
}

// WriteText renders an aligned human-readable table.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	headers := append([]string{t.XLabel}, t.Columns...)
	cells := make([][]string, 0, len(t.rows)+1)
	cells = append(cells, headers)
	for _, r := range t.rows {
		line := []string{formatNum(r.x)}
		for _, y := range r.y {
			line = append(line, formatNum(y))
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(headers))
	for _, line := range cells {
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for li, line := range cells {
		var b strings.Builder
		for i, c := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			b.WriteString(c)
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		if li == 0 {
			total := 0
			for _, wd := range widths {
				total += wd
			}
			total += 2 * (len(widths) - 1)
			if _, err := io.WriteString(w, strings.Repeat("-", total)+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	headers := append([]string{t.XLabel}, t.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, r := range t.rows {
		fields := []string{formatNum(r.x)}
		for _, y := range r.y {
			fields = append(fields, formatNum(y))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the table as one machine-readable JSON object:
// title, axis label, column names, and a row array of {x, y} pairs with y
// in column order. Checked-in experiment artifacts (BENCH_*.json) use
// this format.
func (t *Table) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		X float64   `json:"x"`
		Y []float64 `json:"y"`
	}
	doc := struct {
		Title   string    `json:"title"`
		XLabel  string    `json:"x_label"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
	}{Title: t.Title, XLabel: t.XLabel, Columns: t.Columns}
	for _, r := range t.rows {
		doc.Rows = append(doc.Rows, jsonRow{X: r.x, Y: append([]float64(nil), r.y...)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func formatNum(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}
