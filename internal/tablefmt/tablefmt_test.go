package tablefmt

import (
	"strings"
	"testing"
)

func TestAddRowPanicsOnMismatch(t *testing.T) {
	tbl := New("t", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	tbl.AddRow(1, 2)
}

func TestRowAndColumnAccess(t *testing.T) {
	tbl := New("t", "x", "a", "b")
	tbl.AddRow(1, 10, 20)
	tbl.AddRow(2, 30, 40)
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	x, ys := tbl.Row(1)
	if x != 2 || ys[0] != 30 || ys[1] != 40 {
		t.Errorf("Row(1) = %v %v", x, ys)
	}
	col := tbl.Column("b")
	if len(col) != 2 || col[0] != 20 || col[1] != 40 {
		t.Errorf("Column(b) = %v", col)
	}
	if tbl.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	// Mutating the returned slices must not affect the table.
	ys[0] = 999
	if _, ys2 := tbl.Row(1); ys2[0] != 30 {
		t.Error("Row leaks internal storage")
	}
}

func TestWriteText(t *testing.T) {
	tbl := New("Figure X", "n", "optimal", "multicast")
	tbl.AddRow(10, 1.5, 2)
	tbl.AddRow(100, 15.25, 20)
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure X", "optimal", "multicast", "15.250", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := New("", "x", "y")
	tbl.AddRow(1, 2.5)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2.500\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
