package m2m

import (
	"math"
	"strings"
	"testing"

	"m2m/internal/agg"
)

// TestResilientConfigValidate walks every rejection in
// ResilientConfig.Validate and checks NewResilientSession refuses the
// same configs — validation is wired into construction, not advisory.
func TestResilientConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ResilientConfig
		want string
	}{
		{"negative retries", ResilientConfig{MaxRetries: -1}, "retry budget"},
		{"negative miss threshold", ResilientConfig{MissThreshold: -2}, "miss threshold"},
		{"negative detour budget", ResilientConfig{DetourBudget: -1}, "detour budget"},
		{"negative evacuation horizon", ResilientConfig{EvacuateHorizonRounds: -3}, "evacuation horizon"},
		{"horizon without battery", ResilientConfig{EvacuateHorizonRounds: 2}, "battery ledger"},
		{"NaN evacuate threshold", ResilientConfig{EvacuateThreshold: math.NaN()}, "evacuation threshold"},
		{"evacuate threshold above 1", ResilientConfig{EvacuateThreshold: 1.5}, "outside [0,1]"},
		{"evacuate penalty below 1", ResilientConfig{EvacuatePenalty: 0.5}, "evacuation penalty"},
		{"NaN TDMA threshold", ResilientConfig{TDMASwitchThreshold: math.NaN()}, "TDMA"},
		{"TDMA threshold above 1", ResilientConfig{TDMASwitchThreshold: 1.5}, "TDMA"},
	}
	net, specs, gen := chaosFixture(t, 5)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			if _, serr := NewResilientSession(net, specs, RouterReversePath, gen, nil, tc.cfg); serr == nil {
				t.Fatal("NewResilientSession accepted a config Validate rejects")
			}
		})
	}
}

// lineSession builds a 1×n line (30 m spacing under the 50 m default
// radio range, so only consecutive nodes hear each other) — the minimal
// topology where a single removal partitions the survivors.
func lineSession(t *testing.T, n int, specs []Spec, inj *FaultInjector, cfg ResilientConfig) *ResilientSession {
	t.Helper()
	net := GridNetwork(n, 1, 30)
	gen := make(fixedGen, n)
	for i := 0; i < n; i++ {
		gen[NodeID(i)] = float64(i) + 0.5
	}
	s, err := NewResilientSession(net, specs, RouterReversePath, gen, inj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionErrorAllNodesDead crashes every node at once: with nothing
// left to condemn around, the session must surface an error within a few
// condemnation cycles instead of wedging on an empty network.
func TestSessionErrorAllNodesDead(t *testing.T) {
	const n = 4
	inj := NewFaultInjector(1)
	for i := 0; i < n; i++ {
		inj.Crash(NodeID(i), 1)
	}
	specs := []Spec{{Dest: 0, Func: agg.NewWeightedSum(map[NodeID]float64{2: 1, 3: 1})}}
	s := lineSession(t, n, specs, inj, ResilientConfig{MissThreshold: 1})
	var got error
	for r := 0; r < 25 && got == nil; r++ {
		_, got = s.Step()
	}
	if got == nil {
		t.Fatal("session never surfaced an error with every node crashed")
	}
	t.Logf("surfaced: %v", got)
}

// TestSessionErrorRecoveryDisconnects crashes the middle relay of a
// line: the crash is silent (condemnation path, not quarantine), and
// condemning it splits the survivors, so the incremental replan inside
// recover must fail loudly mid-recovery rather than disseminate a plan
// that cannot route the surviving source.
func TestSessionErrorRecoveryDisconnects(t *testing.T) {
	inj := NewFaultInjector(2)
	inj.Crash(NodeID(2), 2)
	specs := []Spec{{Dest: 0, Func: agg.NewWeightedSum(map[NodeID]float64{2: 1, 4: 1})}}
	s := lineSession(t, 5, specs, inj, ResilientConfig{MissThreshold: 2})
	var got error
	for r := 0; r < 25 && got == nil; r++ {
		_, got = s.Step()
	}
	if got == nil {
		t.Fatal("condemning the partition-point relay did not surface a replan error")
	}
	t.Logf("surfaced: %v", got)
}

// TestSessionErrorRejoinIsolated revives a condemned node whose only
// neighbor is still dead: RestoreNode has no live link to reattach, so
// the rejoin replan cannot route the re-admitted source and the error
// must surface from Step rather than silently re-burying the node.
func TestSessionErrorRejoinIsolated(t *testing.T) {
	// Stagger the crashes so node 3 is condemned (and cleanly pruned)
	// before its relay 2 dies; both recoveries then succeed and the only
	// remaining error path is the rejoin itself.
	inj := NewFaultInjector(3)
	inj.Crash(NodeID(3), 1)
	inj.Crash(NodeID(2), 5)
	inj.Revive(NodeID(3), 12)
	specs := []Spec{{Dest: 0, Func: agg.NewWeightedSum(map[NodeID]float64{1: 1, 2: 1, 3: 1})}}
	s := lineSession(t, 4, specs, inj, ResilientConfig{MissThreshold: 2})
	var got error
	rounds := 0
	for r := 0; r < 20 && got == nil; r++ {
		rounds++
		_, got = s.Step()
	}
	if got == nil {
		t.Fatal("rejoining an isolated node did not surface an error")
	}
	if rounds < 12 {
		t.Fatalf("error surfaced at round %d, before the revive at 12: %v", rounds, got)
	}
	t.Logf("surfaced at round %d: %v", rounds, got)
}
