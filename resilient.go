package m2m

import (
	"fmt"
	"math"
	"sort"

	"m2m/internal/chaos"
	"m2m/internal/failure"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/routing"
	"m2m/internal/sim"
	"m2m/internal/wire"
)

// FaultSchedule is what the lossy executor queries while a round runs:
// which nodes have crashed and which transmission attempts are heard.
// FaultInjector implements it; tests may supply their own deterministic
// schedules.
type FaultSchedule = sim.Faults

// FaultInjector is the deterministic, seedable fault injector: per-link
// stochastic packet loss, transient link outages, and permanent node
// crashes, all reproducible from the seed alone.
type FaultInjector = chaos.Injector

// NewFaultInjector returns an injector that injects nothing until loss,
// outages, or crashes are configured on it.
func NewFaultInjector(seed int64) *FaultInjector { return chaos.New(seed) }

// DeliveryReport describes how well one destination was served by a lossy
// round: exactly (fresh), over partial source coverage (stale), or not at
// all (starved).
type DeliveryReport = sim.DeliveryReport

// LossyResult reports one round executed under a fault schedule.
type LossyResult = sim.LossyResult

// ExecuteLossy runs one round of p on net under the fault schedule:
// messages actually drop, stop-and-wait retransmits at most maxRetries
// times per message, and the result reports exact, partial, and starved
// destinations. With a nil schedule the round is byte-identical to
// Execute.
func ExecuteLossy(p *Plan, net *Network, round int, readings map[NodeID]float64, faults FaultSchedule, maxRetries int) (*LossyResult, error) {
	eng, err := sim.NewEngine(p, net.Radio, sim.Options{MergeMessages: true})
	if err != nil {
		return nil, err
	}
	return eng.RunLossy(round, readings, faults, maxRetries)
}

// AsyncConfig tunes the event-driven asynchronous executor: adaptive
// retransmission bounds, the round deadline, and the dedup window.
type AsyncConfig = sim.AsyncConfig

// AsyncResult reports one asynchronous round: the lossy result plus
// timing, duplication, and deadline telemetry.
type AsyncResult = sim.AsyncResult

// AsyncFaultSchedule extends a fault schedule with per-attempt latency
// and duplication draws. FaultInjector implements it once jitter,
// duplication, or reordering are configured.
type AsyncFaultSchedule = sim.AsyncFaults

// ExecuteAsync runs one event-driven round of p on net: every
// transmission takes a per-link latency draw, lost ones are retransmitted
// under an adaptive per-link RTO, duplicate deliveries are absorbed by
// the (epoch, seq) dedup window, and destinations close at cfg.DeadlineMS
// (if set) with their best partial aggregate. With a nil schedule the
// round is byte-identical to Execute. Schedules that also implement
// AsyncFaultSchedule contribute latency and duplication; plain ones get
// zero-latency channels.
func ExecuteAsync(p *Plan, net *Network, round int, readings map[NodeID]float64, faults FaultSchedule, cfg AsyncConfig) (*AsyncResult, error) {
	eng, err := sim.NewEngine(p, net.Radio, sim.Options{MergeMessages: true})
	if err != nil {
		return nil, err
	}
	return eng.RunAsync(round, readings, faults, cfg)
}

// RecoveryEvent records one permanent-failure recovery performed by a
// ResilientSession.
type RecoveryEvent struct {
	// Dead is the node that was declared permanently failed.
	Dead NodeID
	// Round is the round in which the declaration and replan happened.
	Round int
	// DetectRounds is how many rounds passed between the first
	// unexplained miss implicating the node and its declaration.
	DetectRounds int
	// RecoverRounds is how many rounds after the replan every surviving
	// destination reported fresh again; -1 while that has not happened.
	RecoverRounds int
	// ReplanJ and ReplanBytes price disseminating the incremental plan
	// update (diff against the old tables) from the base station.
	ReplanJ     float64
	ReplanBytes int
	// EdgesReused and EdgesSolved quantify the incremental re-optimization
	// (Corollary 1): single-edge solutions carried over vs re-solved.
	EdgesReused int
	EdgesSolved int
	// DroppedDests lists destinations that left the workload — the dead
	// node itself and any destination whose last source died with it.
	DroppedDests []NodeID
}

// ResilientConfig tunes failure detection and ride-out in a
// ResilientSession. Zero values select the defaults noted on each field.
type ResilientConfig struct {
	// MaxRetries bounds stop-and-wait retransmissions per message
	// (default 3).
	MaxRetries int
	// MissThreshold is K, the consecutive rounds a node must be
	// implicated without vindication before it is declared permanently
	// dead and planned around (default 3).
	MissThreshold int
	// DetourBudget bounds how many consecutive failed rounds of a single
	// link the session rides out with milestone detours before it stops
	// paying for them (default 5). Any delivery on the link resets it.
	DetourBudget int
	// Async, when non-nil, switches rounds to the event-driven
	// asynchronous executor: adaptive per-link retransmission timers
	// replace the fixed stop-and-wait budget, duplicated and reordered
	// deliveries are tolerated, and destinations close at the configured
	// deadline with graceful degradation. RTT estimators and last-known
	// value caches survive recovery replans. MaxRetries still bounds
	// retransmissions unless Async.MaxRetries overrides it.
	Async *AsyncConfig
	// Battery, when non-nil, attaches a shared per-node energy ledger:
	// every round debits each node's actual spend (per-attempt ARQ
	// retransmissions, beacons, and dissemination traffic included) and a
	// node whose residual hits zero falls permanently silent, to be
	// condemned and planned around through the same machinery as a crash.
	// The ledger must cover exactly the network's nodes and is shared
	// across every replan's engine.
	Battery *Battery
	// EvacuateHorizonRounds enables proactive evacuation (battery sessions
	// only): when a beaconing node's forecast time-to-death drops to this
	// many rounds or fewer, the session replans traffic off it before it
	// dies. Zero disables evacuation — depleted nodes are then handled
	// reactively, after the outage. Requires RouterReversePath.
	EvacuateHorizonRounds int
	// EvacuateThreshold is the residual-charge fraction below which a node
	// starts piggybacking low-battery beacons toward the base station
	// (default 0.25).
	EvacuateThreshold float64
	// EvacuatePenalty is the edge-weight multiplier applied to edges
	// incident to evacuating nodes when routes are rebuilt, steering
	// detours away from dying relays (default 8, minimum 1).
	EvacuatePenalty float64
	// TDMASwitchThreshold is the smoothed collision-loss fraction
	// (collided attempts over transmissions) at which the session stops
	// riding contention out and switches to scheduled transmission: it
	// builds a TDMA frame from the plan's wait-for DAG, round-trips it
	// through the wire codec, floods it to every node at its priced energy
	// cost, and drives all further rounds (and every replan's engine) off
	// it. Zero selects the default 0.15; negative disables the switch.
	// Irrelevant unless the fault schedule enables collisions.
	TDMASwitchThreshold float64
	// Byzantine, when non-nil, arms the outlier-quarantine loop: after
	// every round the base station residual-tests each monitored source's
	// reported reading against the robust (median/MAD) population
	// estimate, excises sustained outliers from the workload via an
	// incremental replan, and re-admits them after sustained clean
	// behavior. Lies reach the session only through a fault schedule that
	// implements Adversary (a FaultInjector with WithByzantine windows).
	Byzantine *ByzantineConfig
}

// Validate rejects configurations the zero-value defaults cannot repair:
// negative counters, thresholds outside their domain, non-finite values,
// and flag combinations that contradict each other. NewResilientSession
// calls it, so bad configs fail at construction instead of deep inside a
// step; callers composing configs programmatically (scenario generators)
// can call it early to reject a composition before paying for a plan.
// A negative TDMASwitchThreshold is valid — it disables the switch.
func (c ResilientConfig) Validate() error {
	if c.MaxRetries < 0 {
		return fmt.Errorf("m2m: negative retry budget %d", c.MaxRetries)
	}
	if c.MissThreshold < 0 {
		return fmt.Errorf("m2m: negative miss threshold %d", c.MissThreshold)
	}
	if c.DetourBudget < 0 {
		return fmt.Errorf("m2m: negative detour budget %d", c.DetourBudget)
	}
	if c.EvacuateHorizonRounds < 0 {
		return fmt.Errorf("m2m: negative evacuation horizon %d", c.EvacuateHorizonRounds)
	}
	if c.EvacuateHorizonRounds > 0 && c.Battery == nil {
		return fmt.Errorf("m2m: evacuation horizon set without a battery ledger")
	}
	if math.IsNaN(c.EvacuateThreshold) || c.EvacuateThreshold < 0 || c.EvacuateThreshold > 1 {
		return fmt.Errorf("m2m: evacuation threshold %g outside [0,1]", c.EvacuateThreshold)
	}
	if math.IsNaN(c.EvacuatePenalty) || (c.EvacuatePenalty != 0 && c.EvacuatePenalty < 1) {
		return fmt.Errorf("m2m: evacuation penalty %g below 1", c.EvacuatePenalty)
	}
	if math.IsNaN(c.TDMASwitchThreshold) || c.TDMASwitchThreshold > 1 {
		return fmt.Errorf("m2m: TDMA switch threshold %g above 1", c.TDMASwitchThreshold)
	}
	if c.Async != nil {
		if err := c.Async.Validate(); err != nil {
			return err
		}
	}
	if c.Byzantine != nil {
		if _, err := c.Byzantine.withDefaults(); err != nil {
			return err
		}
	}
	return nil
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.DetourBudget == 0 {
		c.DetourBudget = 5
	}
	if c.EvacuateThreshold == 0 {
		c.EvacuateThreshold = 0.25
	}
	if c.EvacuatePenalty == 0 {
		c.EvacuatePenalty = 8
	}
	if c.TDMASwitchThreshold == 0 {
		c.TDMASwitchThreshold = 0.15
	}
	return c
}

// ResilientStep reports one round of a ResilientSession.
type ResilientStep struct {
	// Round is the 0-based round index.
	Round int
	// Values holds the last fresh (exact) value of every surviving
	// destination; a destination served only partially this round keeps
	// its previous value (stale).
	Values map[NodeID]float64
	// EnergyJ is the round's total radio energy: transmissions and
	// retries, milestone detours, and any replan dissemination.
	EnergyJ float64
	// Reports holds this round's per-destination delivery reports. The
	// map and the report structs are freshly allocated by the executor
	// every round; treat them as read-only.
	Reports map[NodeID]*DeliveryReport
	// DetourJ is the share of EnergyJ spent on milestone detours this
	// round. Detour traffic rides links outside the planned program, so
	// it is priced into EnergyJ but never debited against a battery
	// ledger.
	DetourJ float64
	// Fresh, Stale, and Starved count this round's destinations by how
	// well they were served.
	Fresh, Stale, Starved int
	// Detours is how many failed messages were ridden out via milestone
	// detours this round.
	Detours int
	// DeadlineMisses counts destinations that closed this round at the
	// deadline short of full coverage (async mode only).
	DeadlineMisses int
	// MakespanMS is the simulated wall-clock length of the round (async
	// mode only; zero in synchronous mode).
	MakespanMS float64
	// Recoveries lists permanent-failure recoveries performed this round
	// (usually empty).
	Recoveries []*RecoveryEvent
	// Quarantined counts nodes held in quarantine this round: alive but
	// severed from the base station by the round's failures, so they are
	// ineligible for condemnation until the cut heals.
	Quarantined int
	// Rejoins lists nodes that returned from a transient crash this round
	// and were re-admitted into the workload before it ran.
	Rejoins []NodeID
	// EpochLag counts alive nodes still running an older plan epoch after
	// this round's dissemination pass (their frames are fenced).
	EpochLag int
	// EpochDropped counts frames receivers heard but discarded this round
	// because their plan epoch mismatched the installed tables.
	EpochDropped int
	// Depleted lists the nodes whose battery hit zero during this round,
	// ascending (battery sessions only).
	Depleted []NodeID
	// Evacuations counts nodes proactively evacuated this round: their
	// forecast time-to-death crossed the horizon and the session shifted
	// traffic off them with an energy-weighted replan.
	Evacuations int
	// MinResidualJ is the smallest residual charge among non-depleted
	// nodes after the round (battery sessions only; zero otherwise, and
	// zero once every node is exhausted).
	MinResidualJ float64
	// Collisions counts transmission attempts destroyed by slot contention
	// this round (zero unless the fault schedule enables collisions).
	Collisions int
	// CollisionRate is this round's collided fraction of transmissions.
	CollisionRate float64
	// TDMA reports whether the session is in scheduled-transmission mode
	// after this round (the switch takes effect from the next round).
	TDMA bool
	// Suspects lists the monitored sources whose reported reading fell
	// outside the robust residual gate this round (byzantine sessions
	// only), in monitored order.
	Suspects []NodeID
	// Excisions lists the quarantine excisions performed this round.
	Excisions []*ExcisionEvent
	// Readmissions lists excised sources re-admitted this round after
	// sustained clean behavior.
	Readmissions []NodeID
}

// ResilientSession runs a workload continuously under a fault schedule
// and heals itself. Every round executes the full plan on the lossy
// engine (no temporal suppression — suppressed silence is
// indistinguishable from loss, so a resilient session always transmits;
// see Session for the suppression-based fair-weather variant). Faults are
// classified from observable outcomes only:
//
//   - Transient faults — lost attempts, link outages — are ridden out:
//     stop-and-wait retransmission first, then a milestone detour around
//     the failed link (failure.DetourHops) within a bounded budget.
//     Affected destinations go stale for a round or two and catch up on
//     the next fresh delivery.
//   - Persistent faults — a node silent or unreachable for MissThreshold
//     consecutive rounds — trigger recovery: the node is removed from the
//     graph, the workload pruned, routes rebuilt, the plan repaired
//     incrementally (Corollary 1), and the table diff disseminated at its
//     priced energy cost. The session then resumes on the healed plan.
//
// Detection relies on the lossy engine's keep-alive convention: an alive
// sender always transmits its planned messages, even empty, so silence on
// an edge implicates the sender and exhausted retries implicate the
// receiver — until either is vindicated by any successful send or
// receipt.
type ResilientSession struct {
	net    *Network
	kind   RouterKind
	specs  []Spec
	inst   *Instance
	plan   *Plan
	engine *sim.Engine
	runner *sim.AsyncRunner // non-nil when cfg.Async selects the event-driven executor
	gen    ReadingGenerator
	faults FaultSchedule
	cfg    ResilientConfig

	// The pristine topology and workload, kept for RestoreNode surgery and
	// spec re-admission when a transiently crashed node rejoins.
	origGraph *graph.Undirected
	origSpecs []Spec

	round  int
	values map[NodeID]float64
	totalJ float64

	misses     map[NodeID]int
	firstMiss  map[NodeID]int
	detourRuns map[routing.Edge]int
	dead       map[NodeID]bool
	recoveries []*RecoveryEvent
	pending    []*RecoveryEvent

	// Epoch-fenced reconfiguration state: every replan bumps planEpoch and
	// owes the nodes whose table blobs changed an epoch-stamped diff over
	// the lossy channel. Until a node's diff lands it stays in pendingDiff
	// with its installed epoch in nodeEpoch, and the executors fence every
	// edge it touches. tables caches the current plan's built tables;
	// sched is the fence-wrapped fault schedule handed to the executors.
	tables      *Tables
	sched       FaultSchedule
	planEpoch   uint32
	nodeEpoch   map[NodeID]uint32
	pendingDiff map[NodeID]bool

	// quarantined holds the nodes of live components this round's failures
	// severed from the base station — re-derived every failing round.
	quarantined map[NodeID]bool

	// Contention state: the smoothed collision-loss rate and whether the
	// session has switched to scheduled (TDMA) transmission. Once set, the
	// switch is permanent — every replan's engine gets a fresh frame.
	collRate float64
	tdma     bool

	// Battery-aware state: per-node spend observed at the last round
	// boundary (to derive burn rates), the smoothed burn-rate estimates
	// the base station has heard over beacons, the nodes already
	// evacuated, and the energy prices the last evacuation imposed on the
	// planner (nil until the first evacuation).
	prevSpent map[NodeID]float64
	burn      map[NodeID]float64
	evacuated map[NodeID]bool
	prices    map[NodeID]int64

	// Byzantine-quarantine state (nil/empty unless cfg.Byzantine is set):
	// the monitored source set (union of the pristine workload's sources,
	// ascending), per-node consecutive suspect and clean counters, the
	// currently excised set, and the excision event log (openExcision
	// indexes the events still awaiting re-admission).
	byz          *ByzantineConfig
	monitored    []NodeID
	suspectRuns  map[NodeID]int
	cleanRuns    map[NodeID]int
	excised      map[NodeID]bool
	excisions    []*ExcisionEvent
	openExcision map[NodeID]*ExcisionEvent
}

// NewResilientSession optimizes the workload and prepares continuous
// lossy execution under the fault schedule. A nil schedule means a
// fault-free network (every round then matches Execute byte for byte).
func NewResilientSession(net *Network, specs []Spec, kind RouterKind, gen ReadingGenerator, faults FaultSchedule, cfg ResilientConfig) (*ResilientSession, error) {
	if err := validateSessionInputs(net, kind, gen, cfg); err != nil {
		return nil, err
	}
	inst, err := net.NewInstance(specs, kind)
	if err != nil {
		return nil, err
	}
	p, err := Optimize(inst)
	if err != nil {
		return nil, err
	}
	return newResilientSession(net, specs, kind, inst, p, gen, faults, cfg)
}

// NewResilientSessionWithPlan is NewResilientSession with the expensive
// optimization already done: inst and p must be the instance and optimal
// plan of exactly (net, specs, kind) — typically a serving layer's plan
// cache entry, so thousands of identical tenants amortize one Optimize.
// The plan is adopted by reference and never mutated: the session's
// replans Reoptimize from it copy-on-write, so one plan may seed any
// number of concurrent sessions.
func NewResilientSessionWithPlan(net *Network, specs []Spec, kind RouterKind, inst *Instance, p *Plan, gen ReadingGenerator, faults FaultSchedule, cfg ResilientConfig) (*ResilientSession, error) {
	if err := validateSessionInputs(net, kind, gen, cfg); err != nil {
		return nil, err
	}
	if inst == nil || p == nil {
		return nil, fmt.Errorf("m2m: nil instance or plan")
	}
	return newResilientSession(net, specs, kind, inst, p, gen, faults, cfg)
}

// validateSessionInputs holds the constructor checks shared by both
// session entry points, so a cached-plan session rejects exactly what a
// from-scratch one would.
func validateSessionInputs(net *Network, kind RouterKind, gen ReadingGenerator, cfg ResilientConfig) error {
	if gen == nil {
		return fmt.Errorf("m2m: nil reading generator")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Battery != nil && cfg.Battery.Len() != net.Len() {
		return fmt.Errorf("m2m: battery ledger covers %d nodes, network has %d", cfg.Battery.Len(), net.Len())
	}
	if cfg.EvacuateHorizonRounds > 0 && kind != RouterReversePath {
		return fmt.Errorf("m2m: evacuation requires RouterReversePath (weighted detours)")
	}
	return nil
}

func newResilientSession(net *Network, specs []Spec, kind RouterKind, inst *Instance, p *Plan, gen ReadingGenerator, faults FaultSchedule, cfg ResilientConfig) (*ResilientSession, error) {
	eng, err := sim.NewEngine(p, net.Radio, sim.Options{MergeMessages: true, Battery: cfg.Battery})
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var runner *sim.AsyncRunner
	if cfg.Async != nil {
		acfg := *cfg.Async
		if acfg.MaxRetries == 0 {
			acfg.MaxRetries = cfg.MaxRetries
		}
		if runner, err = sim.NewAsyncRunner(eng, acfg); err != nil {
			return nil, err
		}
	}
	s := &ResilientSession{
		net:         net,
		kind:        kind,
		specs:       specs,
		inst:        inst,
		plan:        p,
		engine:      eng,
		runner:      runner,
		gen:         gen,
		faults:      faults,
		cfg:         cfg,
		origGraph:   net.Graph.Clone(),
		origSpecs:   append([]Spec(nil), specs...),
		values:      make(map[NodeID]float64),
		misses:      make(map[NodeID]int),
		firstMiss:   make(map[NodeID]int),
		detourRuns:  make(map[routing.Edge]int),
		dead:        make(map[NodeID]bool),
		planEpoch:   1,
		nodeEpoch:   make(map[NodeID]uint32),
		pendingDiff: make(map[NodeID]bool),
		quarantined: make(map[NodeID]bool),
	}
	if cfg.Battery != nil {
		s.prevSpent = make(map[NodeID]float64)
		s.burn = make(map[NodeID]float64)
		s.evacuated = make(map[NodeID]bool)
	}
	if cfg.Byzantine != nil {
		bz, err := cfg.Byzantine.withDefaults()
		if err != nil {
			return nil, err
		}
		s.byz = &bz
		srcSet := make(map[NodeID]bool)
		for _, sp := range specs {
			for _, src := range sp.Func.Sources() {
				srcSet[src] = true
			}
		}
		for n := range srcSet {
			s.monitored = append(s.monitored, n)
		}
		sort.Slice(s.monitored, func(i, j int) bool { return s.monitored[i] < s.monitored[j] })
		s.suspectRuns = make(map[NodeID]int)
		s.cleanRuns = make(map[NodeID]int)
		s.excised = make(map[NodeID]bool)
		s.openExcision = make(map[NodeID]*ExcisionEvent)
	}
	// A fault-free session gets no fence wrapper: the executors then skip
	// the epoch branch entirely and stay byte-identical to Execute. A
	// battery session always gets one — exhaustion can strike any round,
	// and evacuation replans need the epoch fence.
	if faults != nil || cfg.Battery != nil {
		if _, ok := faults.(sim.AsyncFaults); ok {
			s.sched = asyncEpochFence{epochFence{s}}
		} else {
			s.sched = epochFence{s}
		}
	}
	return s, nil
}

// epochFence wraps the session's fault schedule with the plan-epoch view
// (sim.Epochs) the executors fence on. The delegation is pure, so draws
// are untouched; only the epoch queries (and, for battery sessions with a
// nil fault schedule, the depletion view) are added.
type epochFence struct{ s *ResilientSession }

func (f epochFence) NodeDead(round int, n NodeID) bool { return f.s.nodeDown(round, n) }
func (f epochFence) Deliver(round int, e routing.Edge, attempt int) bool {
	if f.s.faults == nil {
		return true
	}
	return f.s.faults.Deliver(round, e, attempt)
}
func (f epochFence) PlanEpoch() uint32 { return f.s.planEpoch }

// CorruptReading forwards the executors' pre-aggregation corruption hook
// to the wrapped schedule when it lies (implements sim.Adversary);
// otherwise it is the identity, so honest sessions stay byte-identical.
func (f epochFence) CorruptReading(round int, n NodeID, v float64) float64 {
	if adv, ok := f.s.faults.(sim.Adversary); ok {
		return adv.CorruptReading(round, n, v)
	}
	return v
}

// The collision dimensions forward to the wrapped schedule when it
// implements them (a FaultInjector with WithCollisions); otherwise the
// model stays off and the executors never consult the other methods, so
// honest sessions remain byte-identical.
func (f epochFence) CollisionsEnabled() bool {
	cf, ok := f.s.faults.(sim.CollisionFaults)
	return ok && cf.CollisionsEnabled()
}

func (f epochFence) CollisionReceiver(n NodeID) bool {
	if cf, ok := f.s.faults.(sim.CollisionFaults); ok {
		return cf.CollisionReceiver(n)
	}
	return false
}

func (f epochFence) CaptureWins(round int, e routing.Edge, attempt int) bool {
	if cf, ok := f.s.faults.(sim.CollisionFaults); ok {
		return cf.CaptureWins(round, e, attempt)
	}
	return false
}

func (f epochFence) BackoffSlots(round int, e routing.Edge, attempt, window int) int {
	if cf, ok := f.s.faults.(sim.CollisionFaults); ok {
		return cf.BackoffSlots(round, e, attempt, window)
	}
	return 0
}

func (f epochFence) NodeEpoch(n NodeID) uint32 {
	if e, ok := f.s.nodeEpoch[n]; ok {
		return e
	}
	return f.s.planEpoch
}

// asyncEpochFence additionally forwards the timing draws so the async
// executor keeps its latency/duplication behavior through the fence.
type asyncEpochFence struct{ epochFence }

func (f asyncEpochFence) LatencyMS(round int, e routing.Edge, attempt, c int) float64 {
	return f.s.faults.(sim.AsyncFaults).LatencyMS(round, e, attempt, c)
}
func (f asyncEpochFence) Duplicates(round int, e routing.Edge, attempt int) int {
	return f.s.faults.(sim.AsyncFaults).Duplicates(round, e, attempt)
}

// nodeDown reports whether n is out of action at the given round: crashed
// per the fault schedule, or battery-exhausted per the ledger.
func (s *ResilientSession) nodeDown(round int, n NodeID) bool {
	if b := s.cfg.Battery; b != nil && b.Depleted(n) {
		return true
	}
	return s.faults != nil && s.faults.NodeDead(round, n)
}

// Step executes the next round: re-admit any revived nodes, run the plan
// under the (epoch-fenced) fault schedule, classify what failed —
// quarantining severed components instead of condemning them node by
// node — recover from what looks permanent, and push owed table diffs
// over the lossy channel.
func (s *ResilientSession) Step() (*ResilientStep, error) {
	step := &ResilientStep{Round: s.round}

	// Revived nodes rejoin before the round runs: graph surgery, spec
	// re-admission, and an incremental replan whose diffs disseminate at
	// the end of this step — the rejoined region runs one fenced round
	// before it contributes again.
	if s.faults != nil && len(s.dead) > 0 {
		for _, n := range s.DeadNodes() {
			if s.faults.NodeDead(s.round, n) {
				continue
			}
			if b := s.cfg.Battery; b != nil && b.Depleted(n) {
				continue // exhaustion is terminal: a revived schedule cannot recharge it
			}
			if err := s.rejoin(n); err != nil {
				return nil, err
			}
			step.Rejoins = append(step.Rejoins, n)
		}
	}

	cur := s.gen.Next()
	var res *sim.LossyResult
	var async *sim.AsyncResult
	if s.runner != nil {
		ar, err := s.runner.Run(s.round, cur, s.sched)
		if err != nil {
			return nil, err
		}
		async = ar
		res = &ar.LossyResult
	} else {
		var err error
		res, err = s.engine.RunLossy(s.round, cur, s.sched, s.cfg.MaxRetries)
		if err != nil {
			return nil, err
		}
	}
	step.EnergyJ = res.EnergyJ
	step.Reports = res.Reports
	step.EpochDropped = res.EpochDropped

	// Contention signal: smooth the observed collision-loss fraction and,
	// once it crosses the threshold, switch permanently to scheduled
	// transmission — the frame goes out before the next round runs.
	step.Collisions = res.Collisions
	if res.Transmissions > 0 {
		step.CollisionRate = float64(res.Collisions) / float64(res.Transmissions)
		s.collRate = 0.5*s.collRate + 0.5*step.CollisionRate
	}
	if !s.tdma && s.cfg.TDMASwitchThreshold > 0 && s.collRate >= s.cfg.TDMASwitchThreshold {
		if err := s.switchToTDMA(step); err != nil {
			return nil, err
		}
	}
	step.TDMA = s.tdma

	if async != nil {
		step.MakespanMS = async.MakespanMS
		for _, rep := range res.Reports {
			if rep.DeadlineHit {
				step.DeadlineMisses++
			}
		}
	}

	// Derive this round's quarantine from observed connectivity: an
	// undirected edge for every delivered message (links that carried
	// nothing cannot vouch for anything). A component severed from the
	// base station whose nodes still transmitted is alive but unreachable
	// — a partition, not a die-off — so the whole component is quarantined
	// instead of being condemned node by node. Components that went silent
	// (no transmissions at all) stay on the normal condemnation path.
	quar := make(map[NodeID]bool)
	anyFailed := false
	for _, o := range res.Outcomes {
		if !o.Delivered {
			anyFailed = true
			break
		}
	}
	if anyFailed {
		if base, berr := s.lowestAlive(noNode); berr == nil {
			observed := graph.NewUndirected(s.net.Len())
			transmitted := make(map[NodeID]bool)
			for _, o := range res.Outcomes {
				if o.Attempts > 0 {
					transmitted[o.Edge.From] = true
				}
				if o.Delivered && !observed.HasEdge(o.Edge.From, o.Edge.To) {
					observed.AddEdge(o.Edge.From, o.Edge.To, 1)
				}
			}
			for _, comp := range observed.Components() {
				inBase, live := false, false
				for _, n := range comp {
					inBase = inBase || n == base
					live = live || transmitted[n]
				}
				if inBase || !live {
					continue
				}
				for _, n := range comp {
					if !s.dead[n] {
						quar[n] = true
					}
				}
			}
		}
	}
	s.quarantined = quar
	step.Quarantined = len(quar)

	// Classify this round's observations. A node is vindicated by any
	// successful send or receipt; it is implicated by silence (dead
	// senders are the only silent ones) or by exhausting the retry budget
	// toward it when the detour also comes back empty. Quarantined nodes
	// are exempt on both sides — the cut explains everything about them —
	// and so are edges with an epoch-lagging endpoint, where the fence ate
	// the frame.
	implicated := make(map[NodeID]bool)
	vindicated := make(map[NodeID]bool)
	lagging := func(n NodeID) bool { _, ok := s.nodeEpoch[n]; return ok }
	for _, o := range res.Outcomes {
		switch {
		case o.Attempts == 0:
			if !quar[o.Edge.From] {
				implicated[o.Edge.From] = true
			}
		case o.Delivered:
			vindicated[o.Edge.From] = true
			vindicated[o.Edge.To] = true
			delete(s.detourRuns, o.Edge)
		default:
			// The sender kept transmitting, so it is alive; suspicion
			// falls on the link or the receiver.
			vindicated[o.Edge.From] = true
			if quar[o.Edge.From] || quar[o.Edge.To] || lagging(o.Edge.From) || lagging(o.Edge.To) {
				// Explained failure: no detour spend, no implication.
				continue
			}
			// Ride the link out with a milestone detour while the budget
			// lasts.
			if s.detourRuns[o.Edge] < s.cfg.DetourBudget {
				s.detourRuns[o.Edge]++
				if hops, derr := failure.DetourHops(s.net.Graph, o.Edge.From, o.Edge.To, o.Edge.From, o.Edge.To); derr == nil {
					step.Detours++
					detourJ := float64(hops) * s.net.Radio.UnicastJoules(o.BodyBytes)
					step.EnergyJ += detourJ
					step.DetourJ += detourJ
					if !s.nodeDown(s.round, o.Edge.To) {
						// The detour got through: the receiver answered.
						vindicated[o.Edge.To] = true
						continue
					}
				}
			}
			implicated[o.Edge.To] = true
		}
	}

	// Keep only strictly consecutive misses.
	for n := range s.misses {
		if vindicated[n] || !implicated[n] {
			delete(s.misses, n)
			delete(s.firstMiss, n)
		}
	}
	for n := range implicated {
		if s.dead[n] || vindicated[n] {
			continue
		}
		if s.misses[n] == 0 {
			s.firstMiss[n] = s.round
		}
		s.misses[n]++
	}

	// Update last-known values from this round's exact deliveries.
	for d, rep := range res.Reports {
		switch {
		case rep.Fresh:
			step.Fresh++
			s.values[d] = res.Values[d]
		case rep.Starved:
			step.Starved++
		default:
			step.Stale++
		}
	}

	// A fault-free round closes out pending recoveries: every surviving
	// destination has caught up.
	if len(s.pending) > 0 {
		allFresh := true
		for _, d := range s.inst.Dests() {
			if rep := res.Reports[d]; rep == nil || !rep.Fresh {
				allFresh = false
				break
			}
		}
		if allFresh {
			for _, ev := range s.pending {
				ev.RecoverRounds = s.round - ev.Round
			}
			s.pending = nil
		}
	}

	// Declare persistent faults and heal.
	var condemned []NodeID
	for n, c := range s.misses {
		if c >= s.cfg.MissThreshold {
			condemned = append(condemned, n)
		}
	}
	sort.Slice(condemned, func(i, j int) bool { return condemned[i] < condemned[j] })
	for _, n := range condemned {
		ev, err := s.recover(n)
		if err != nil {
			return nil, err
		}
		step.Recoveries = append(step.Recoveries, ev)
	}

	// Byzantine audit: residual-test this round's reported readings
	// against the robust population estimate, excise sustained outliers,
	// re-admit the reformed — before dissemination so excision diffs go
	// out this round.
	if s.byz != nil {
		if err := s.observeByzantine(cur, step); err != nil {
			return nil, err
		}
	}

	// Battery observation: burn rates from the ledger, low-battery beacons
	// toward the base, time-to-death forecasts, and proactive evacuation
	// replans — before dissemination so evacuation diffs go out this round.
	if s.cfg.Battery != nil && s.cfg.EvacuateHorizonRounds > 0 {
		if err := s.observeBattery(step); err != nil {
			return nil, err
		}
	}

	// Push owed table diffs over the lossy channel: epoch-stamped frames,
	// hop-by-hop retries, priced like any other traffic. Whatever fails —
	// typically a quarantined region — stays pending for the next round.
	if len(s.pendingDiff) > 0 {
		if err := s.disseminate(step); err != nil {
			return nil, err
		}
	}
	step.EpochLag = len(s.pendingDiff)

	// Battery telemetry reflects everything the round debited, beacons and
	// dissemination included.
	if b := s.cfg.Battery; b != nil {
		for _, n := range b.DepletedNodes() {
			if b.DepletedAt(n) == s.round {
				step.Depleted = append(step.Depleted, n)
			}
		}
		step.MinResidualJ = b.MinResidualJ()
	}

	step.Values = make(map[NodeID]float64, len(s.values))
	for d, v := range s.values {
		step.Values[d] = v
	}
	s.totalJ += step.EnergyJ
	s.round++
	return step, nil
}

// recover plans around a node declared permanently dead: graph surgery,
// workload pruning, rerouting, incremental re-optimization, and priced
// dissemination of the table diff.
func (s *ResilientSession) recover(dead NodeID) (*RecoveryEvent, error) {
	g2, err := failure.RemoveNode(s.net.Graph, dead)
	if err != nil {
		return nil, err
	}
	pruned, _, err := failure.PruneSpecs(s.specs, dead)
	if err != nil {
		return nil, fmt.Errorf("m2m: cannot recover: %w", err)
	}
	net2 := &Network{Layout: s.net.Layout, Graph: g2, Radio: s.net.Radio}
	newInst, err := s.newInstance(g2, pruned)
	if err != nil {
		return nil, err
	}
	recovered, stats, err := plan.ReoptimizeWithPrices(s.plan, newInst, s.prices)
	if err != nil {
		return nil, err
	}
	oldTab, err := s.currentTables()
	if err != nil {
		return nil, err
	}
	newTab, err := recovered.BuildTables()
	if err != nil {
		return nil, err
	}
	base, err := s.lowestAlive(dead)
	if err != nil {
		return nil, err
	}
	diff, err := wire.CostUpdate(s.inst, newInst, oldTab, newTab, s.net.Radio, base)
	if err != nil {
		return nil, err
	}
	changed, err := wire.ChangedNodes(s.inst, newInst, oldTab, newTab)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(recovered, s.net.Radio, sim.Options{MergeMessages: true, Battery: s.cfg.Battery})
	if err != nil {
		return nil, err
	}
	var runner *sim.AsyncRunner
	if s.runner != nil {
		// Carry the surviving links' RTT estimators and the last-known
		// value caches across the replan: the healed plan mostly reuses
		// the same links, and stale destinations keep their age.
		acfg := *s.cfg.Async
		if acfg.MaxRetries == 0 {
			acfg.MaxRetries = s.cfg.MaxRetries
		}
		if runner, err = sim.NewAsyncRunner(eng, acfg); err != nil {
			return nil, err
		}
		runner.InheritState(s.runner)
	}
	if s.tdma {
		// The healed plan needs its own frame; it rides the replan's table
		// dissemination, which is priced below.
		if _, err := installTDMA(eng, s.planEpoch+1); err != nil {
			return nil, err
		}
	}

	ev := &RecoveryEvent{
		Dead:          dead,
		Round:         s.round,
		DetectRounds:  s.round - s.firstMiss[dead] + 1,
		RecoverRounds: -1,
		ReplanJ:       diff.EnergyJ,
		ReplanBytes:   diff.Bytes,
		EdgesReused:   stats.EdgesReused,
		EdgesSolved:   stats.EdgesSolved,
	}
	for _, d := range s.inst.Dests() {
		if _, ok := newInst.SpecByDest[d]; !ok {
			ev.DroppedDests = append(ev.DroppedDests, d)
			delete(s.values, d)
		}
	}

	s.net = net2
	s.specs = pruned
	s.inst = newInst
	s.plan = recovered
	s.engine = eng
	if runner != nil {
		s.runner = runner
	}
	s.dead[dead] = true
	s.tables = newTab
	s.bumpEpoch(changed, base)
	delete(s.misses, dead)
	delete(s.firstMiss, dead)
	delete(s.pendingDiff, dead)
	delete(s.nodeEpoch, dead)
	delete(s.quarantined, dead)
	s.recoveries = append(s.recoveries, ev)
	s.pending = append(s.pending, ev)
	return ev, nil
}

// rejoin re-admits a revived node — the inverse of recover. Its original
// links to still-alive neighbors are restored from the pristine topology,
// the pristine workload is re-pruned by the remaining dead set (in
// ascending order, so the rebuilt specs match what successive recoveries
// would have produced), and the session replans incrementally under a new
// epoch whose diffs disseminate at the end of the step.
func (s *ResilientSession) rejoin(n NodeID) error {
	restore := func(err error) error {
		s.dead[n] = true
		return err
	}
	g2 := s.net.Graph.Clone()
	if err := failure.RestoreNode(g2, s.origGraph, n, func(m NodeID) bool { return m != n && s.dead[m] }); err != nil {
		return err
	}
	delete(s.dead, n)
	specs, err := s.rebuildSpecs()
	if err != nil {
		return restore(fmt.Errorf("m2m: cannot rejoin node %d: %w", n, err))
	}
	net2 := &Network{Layout: s.net.Layout, Graph: g2, Radio: s.net.Radio}
	newInst, err := s.newInstance(g2, specs)
	if err != nil {
		return restore(err)
	}
	recovered, _, err := plan.ReoptimizeWithPrices(s.plan, newInst, s.prices)
	if err != nil {
		return restore(err)
	}
	oldTab, err := s.currentTables()
	if err != nil {
		return restore(err)
	}
	newTab, err := recovered.BuildTables()
	if err != nil {
		return restore(err)
	}
	changed, err := wire.ChangedNodes(s.inst, newInst, oldTab, newTab)
	if err != nil {
		return restore(err)
	}
	eng, err := sim.NewEngine(recovered, s.net.Radio, sim.Options{MergeMessages: true, Battery: s.cfg.Battery})
	if err != nil {
		return restore(err)
	}
	var runner *sim.AsyncRunner
	if s.runner != nil {
		acfg := *s.cfg.Async
		if acfg.MaxRetries == 0 {
			acfg.MaxRetries = s.cfg.MaxRetries
		}
		if runner, err = sim.NewAsyncRunner(eng, acfg); err != nil {
			return restore(err)
		}
		runner.InheritState(s.runner)
	}
	if s.tdma {
		if _, err := installTDMA(eng, s.planEpoch+1); err != nil {
			return restore(err)
		}
	}
	base, err := s.lowestAlive(noNode)
	if err != nil {
		return restore(err)
	}

	s.net = net2
	s.specs = specs
	s.inst = newInst
	s.plan = recovered
	s.engine = eng
	if runner != nil {
		s.runner = runner
	}
	s.tables = newTab
	s.bumpEpoch(changed, base)
	return nil
}

// beaconAttemptBase offsets the delivery-draw attempt numbers beacon hops
// consume, in a space disjoint from both the data plane's and the table
// disseminator's, so battery chatter cannot perturb either's loss draws
// (draws are pure in (round, edge, attempt)).
const beaconAttemptBase = 1 << 21

// observeBattery runs the base station's energy bookkeeping after a
// round: derive per-node burn rates from the ledger, collect low-battery
// beacons over the wire layer, forecast each beaconing node's
// time-to-death, and evacuate any whose forecast crossed the horizon.
func (s *ResilientSession) observeBattery(step *ResilientStep) error {
	b := s.cfg.Battery
	base, err := s.lowestAlive(noNode)
	if err != nil {
		return err
	}
	bfs := s.inst.Net.BFS(base)
	attempts := make(map[routing.Edge]int)
	var dying []NodeID
	for i := 0; i < s.net.Len(); i++ {
		n := NodeID(i)
		spent := b.SpentJ(n)
		delta := spent - s.prevSpent[n]
		s.prevSpent[n] = spent
		if s.dead[n] || b.Depleted(n) {
			delete(s.burn, n)
			continue
		}
		// Smooth the burn estimate so one quiet or busy round does not
		// swing the forecast.
		if prev, ok := s.burn[n]; ok {
			s.burn[n] = 0.5*prev + 0.5*delta
		} else if delta > 0 {
			s.burn[n] = delta
		}
		if n == base || s.evacuated[n] || s.burn[n] <= 0 {
			continue
		}
		if b.Residual(n)/b.CapacityJ(n) >= s.cfg.EvacuateThreshold {
			continue
		}
		// Below the threshold the node advertises its state toward the
		// base; the forecast uses what the wire actually carried
		// (fixed-point quantized), not the ledger's ground truth.
		bc, err := s.sendBeacon(bfs, n, attempts, step)
		if err != nil {
			return err
		}
		if bc == nil || bc.BurnJPerRound <= 0 {
			continue // beacon lost en route: try again next round
		}
		if bc.ResidualJ/bc.BurnJPerRound <= float64(s.cfg.EvacuateHorizonRounds) {
			dying = append(dying, bc.Node)
		}
	}
	if len(dying) == 0 {
		return nil
	}
	return s.evacuate(dying, step)
}

// sendBeacon carries node n's battery advertisement hop-by-hop toward the
// base station along the dissemination tree. Every hop is priced like any
// other traffic and debited from the ledger; beacons are best-effort
// (single attempt per hop, no ARQ), so a dead or browned-out relay, or a
// lost frame, returns nil — the node beacons again next round. On success
// it returns the beacon as the base station decoded it.
func (s *ResilientSession) sendBeacon(bfs *graph.PathTree, n NodeID, attempts map[routing.Edge]int, step *ResilientStep) (*wire.Beacon, error) {
	b := s.cfg.Battery
	frame, err := wire.EncodeBeacon(n, b.Residual(n), s.burn[n])
	if err != nil {
		return nil, err
	}
	path := bfs.PathTo(n)
	if path == nil {
		return nil, nil // severed from the base: nothing to piggyback on
	}
	body := len(frame)
	txJ := s.net.Radio.TxJoules(body)
	rxJ := s.net.Radio.RxJoules(body)
	for h := len(path) - 1; h > 0; h-- {
		e := routing.Edge{From: path[h], To: path[h-1]}
		if s.nodeDown(s.round, e.From) || !b.Spend(s.round, e.From, txJ) {
			return nil, nil
		}
		step.EnergyJ += txJ
		seq := beaconAttemptBase + attempts[e]
		attempts[e]++
		if s.nodeDown(s.round, e.To) {
			return nil, nil
		}
		if s.faults != nil && !s.faults.Deliver(s.round, e, seq) {
			return nil, nil
		}
		if !b.Spend(s.round, e.To, rxJ) {
			return nil, nil // receiver browned out: frame unheard
		}
		step.EnergyJ += rxJ
	}
	bc, err := wire.DecodeBeacon(frame)
	if err != nil {
		return nil, err
	}
	return &bc, nil
}

// evacuate shifts traffic off relays forecast to die within the horizon,
// before they fail: routes are rebuilt on an energy-weighted copy of the
// topology whose edges into evacuating nodes carry EvacuatePenalty, every
// edge's vertex cover is re-posed with residual-scaled node prices, and
// the incremental plan disseminates under a new epoch exactly like a
// recovery replan — except nothing has failed yet.
func (s *ResilientSession) evacuate(dying []NodeID, step *ResilientStep) error {
	for _, n := range dying {
		s.evacuated[n] = true
	}
	prices := s.energyPrices()
	newInst, err := s.newInstance(s.net.Graph, s.specs)
	if err != nil {
		return err
	}
	replanned, _, err := plan.ReoptimizeWithPrices(s.plan, newInst, prices)
	if err != nil {
		return err
	}
	oldTab, err := s.currentTables()
	if err != nil {
		return err
	}
	newTab, err := replanned.BuildTables()
	if err != nil {
		return err
	}
	changed, err := wire.ChangedNodes(s.inst, newInst, oldTab, newTab)
	if err != nil {
		return err
	}
	base, err := s.lowestAlive(noNode)
	if err != nil {
		return err
	}
	eng, err := sim.NewEngine(replanned, s.net.Radio, sim.Options{MergeMessages: true, Battery: s.cfg.Battery})
	if err != nil {
		return err
	}
	var runner *sim.AsyncRunner
	if s.runner != nil {
		acfg := *s.cfg.Async
		if acfg.MaxRetries == 0 {
			acfg.MaxRetries = s.cfg.MaxRetries
		}
		if runner, err = sim.NewAsyncRunner(eng, acfg); err != nil {
			return err
		}
		runner.InheritState(s.runner)
	}
	if s.tdma {
		if _, err := installTDMA(eng, s.planEpoch+1); err != nil {
			return err
		}
	}

	s.inst = newInst
	s.plan = replanned
	s.engine = eng
	if runner != nil {
		s.runner = runner
	}
	s.prices = prices
	s.tables = newTab
	s.bumpEpoch(changed, base)
	step.Evacuations += len(dying)
	return nil
}

// energyPrices derives the planner's per-node price map from the ledger:
// a healthy node keeps the implicit price 1, while a node below the
// beacon threshold (or already evacuated) climbs toward 5 as its residual
// fraction falls to zero, so cover solutions shed bytes from the dying
// first.
func (s *ResilientSession) energyPrices() map[NodeID]int64 {
	b := s.cfg.Battery
	prices := make(map[NodeID]int64)
	for i := 0; i < s.net.Len(); i++ {
		n := NodeID(i)
		if s.dead[n] {
			continue
		}
		frac := 0.0
		if !b.Depleted(n) {
			frac = b.Residual(n) / b.CapacityJ(n)
		}
		if frac >= s.cfg.EvacuateThreshold && !s.evacuated[n] {
			continue
		}
		if p := 1 + int64(math.Round((1-frac)*4)); p > 1 {
			prices[n] = p
		}
	}
	return prices
}

// hotNodes returns the still-alive evacuated nodes — the ones route
// rebuilds must detour around.
func (s *ResilientSession) hotNodes() map[NodeID]bool {
	hot := make(map[NodeID]bool, len(s.evacuated))
	for n := range s.evacuated {
		if !s.dead[n] {
			hot[n] = true
		}
	}
	return hot
}

// newInstance resolves routes for specs over g, honoring any evacuation
// in force: with no hot nodes it uses the session's configured router;
// otherwise it routes with weighted reverse-path trees over an
// energy-weighted copy of g that penalizes edges into hot nodes.
func (s *ResilientSession) newInstance(g *graph.Undirected, specs []Spec) (*Instance, error) {
	hot := s.hotNodes()
	if len(hot) == 0 {
		net2 := &Network{Layout: s.net.Layout, Graph: g, Radio: s.net.Radio}
		return net2.NewInstance(specs, s.kind)
	}
	wg, err := failure.EvacuationGraph(g, hot, s.cfg.EvacuatePenalty)
	if err != nil {
		return nil, err
	}
	return plan.NewInstance(wg, routing.NewWeightedReversePath(wg), specs)
}

// bumpEpoch advances the plan epoch after a replan and marks every alive
// node whose table blob changed as owed a diff. A node already lagging
// keeps its older installed epoch (it needs the current tables whatever
// the latest diff says); the base installs its own tables for free and is
// never marked.
func (s *ResilientSession) bumpEpoch(changed []NodeID, base NodeID) {
	prev := s.planEpoch
	s.planEpoch++
	for _, n := range changed {
		if s.dead[n] || n == base {
			continue
		}
		if _, ok := s.nodeEpoch[n]; !ok {
			s.nodeEpoch[n] = prev
		}
		s.pendingDiff[n] = true
	}
}

// disseminate pushes the current epoch's owed table diffs from the base
// station over the lossy channel and settles the bookkeeping: updated
// nodes install the current epoch, failed ones stay pending.
func (s *ResilientSession) disseminate(step *ResilientStep) error {
	base, err := s.lowestAlive(noNode)
	if err != nil {
		return err
	}
	nodes := make([]NodeID, 0, len(s.pendingDiff))
	for n := range s.pendingDiff {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	tab, err := s.currentTables()
	if err != nil {
		return err
	}
	var sched wire.Schedule
	if s.faults != nil || s.cfg.Battery != nil {
		sched = epochFence{s}
	}
	dres, err := wire.DisseminateTables(s.inst, tab, s.net.Radio, base, nodes, s.planEpoch, sched, s.round, s.cfg.MaxRetries)
	if err != nil {
		return err
	}
	step.EnergyJ += dres.EnergyJ
	if b := s.cfg.Battery; b != nil {
		// Control traffic drains radios too. Each node's debit is a single
		// aggregated amount, so map order cannot change the outcome.
		for n, j := range dres.PerNodeJ {
			b.Spend(s.round, n, j)
		}
	}
	for _, n := range dres.Updated {
		delete(s.pendingDiff, n)
		delete(s.nodeEpoch, n)
	}
	return nil
}

// installTDMA equips eng with a TDMA frame derived from its own message
// layout, round-tripped through the wire codec exactly as a mote would
// receive it off the air — so LoadFrame validates what was actually
// transmitted, not the in-memory schedule. Returns the encoded frame.
func installTDMA(eng *sim.Engine, epoch uint32) ([]byte, error) {
	sched, _, err := eng.BuildSchedule()
	if err != nil {
		return nil, err
	}
	frame, err := wire.EncodeTDMA(epoch, sched.SlotOf)
	if err != nil {
		return nil, err
	}
	dec, err := wire.DecodeTDMA(frame)
	if err != nil {
		return nil, err
	}
	if err := eng.LoadFrame(dec.SlotOf); err != nil {
		return nil, err
	}
	return frame, nil
}

// switchToTDMA performs the one-time move to scheduled transmission:
// build and install the frame, then flood it from the base station down
// the dissemination tree — one unicast per alive reachable node, priced
// and debited like any other control traffic. The flood is one-shot (no
// per-hop ARQ is modeled for it); the frame is in force from the next
// round. Replans after the switch derive fresh frames that ride the
// already-priced table dissemination instead.
func (s *ResilientSession) switchToTDMA(step *ResilientStep) error {
	frame, err := installTDMA(s.engine, s.planEpoch)
	if err != nil {
		return err
	}
	base, err := s.lowestAlive(noNode)
	if err != nil {
		return err
	}
	bfs := s.inst.Net.BFS(base)
	body := len(frame)
	for i := 0; i < s.net.Len(); i++ {
		n := NodeID(i)
		if n == base || s.dead[n] || !bfs.Reachable(n) {
			continue
		}
		step.EnergyJ += s.net.Radio.UnicastJoules(body)
		if b := s.cfg.Battery; b != nil {
			b.Spend(s.round, bfs.Parent[n], s.net.Radio.TxJoules(body))
			b.Spend(s.round, n, s.net.Radio.RxJoules(body))
		}
	}
	s.tdma = true
	return nil
}

// currentTables lazily builds and caches the executing plan's tables.
func (s *ResilientSession) currentTables() (*Tables, error) {
	if s.tables == nil {
		t, err := s.plan.BuildTables()
		if err != nil {
			return nil, err
		}
		s.tables = t
	}
	return s.tables, nil
}

// noNode is the sentinel lowestAlive callers pass when no node is dying.
const noNode = NodeID(-1)

// lowestAlive picks the dissemination base station: the lowest-numbered
// node not known to be dead (and not being condemned right now). A
// battery-exhausted node cannot serve either. It errors when nobody
// survives rather than silently electing dead node 0.
func (s *ResilientSession) lowestAlive(dying NodeID) (NodeID, error) {
	b := s.cfg.Battery
	for i := 0; i < s.net.Len(); i++ {
		n := NodeID(i)
		if s.dead[n] || n == dying {
			continue
		}
		if b != nil && b.Depleted(n) {
			continue
		}
		return n, nil
	}
	return 0, fmt.Errorf("m2m: no surviving node to act as base station")
}

// Rounds returns how many rounds have executed.
func (s *ResilientSession) Rounds() int { return s.round }

// TotalEnergyJ returns the session's accumulated radio energy, including
// retries, detours, and replan dissemination.
func (s *ResilientSession) TotalEnergyJ() float64 { return s.totalJ }

// Recoveries returns every permanent-failure recovery so far, in order.
func (s *ResilientSession) Recoveries() []*RecoveryEvent {
	return append([]*RecoveryEvent(nil), s.recoveries...)
}

// DeadNodes returns the nodes declared permanently failed, ascending.
func (s *ResilientSession) DeadNodes() []NodeID {
	out := make([]NodeID, 0, len(s.dead))
	for n := range s.dead {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Workload returns the current (possibly pruned) workload.
func (s *ResilientSession) Workload() []Spec {
	return append([]Spec(nil), s.specs...)
}

// CurrentPlan returns the plan the session is executing right now.
func (s *ResilientSession) CurrentPlan() *Plan { return s.plan }

// PlanEpoch returns the epoch of the plan the session is executing; it
// starts at 1 and bumps on every replan (recovery or rejoin).
func (s *ResilientSession) PlanEpoch() uint32 { return s.planEpoch }

// TDMAActive reports whether the session has switched to scheduled
// (TDMA) transmission.
func (s *ResilientSession) TDMAActive() bool { return s.tdma }

// CollisionRate returns the smoothed collision-loss fraction the switch
// decision tracks (zero unless the fault schedule enables collisions).
func (s *ResilientSession) CollisionRate() float64 { return s.collRate }

// QuarantinedNodes returns the nodes held in quarantine after the last
// round, ascending: alive but severed from the base station, so exempt
// from condemnation until the cut heals.
func (s *ResilientSession) QuarantinedNodes() []NodeID {
	out := make([]NodeID, 0, len(s.quarantined))
	for n := range s.quarantined {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvacuatedNodes returns the nodes the session has proactively evacuated
// so far, ascending (including any that later died anyway).
func (s *ResilientSession) EvacuatedNodes() []NodeID {
	out := make([]NodeID, 0, len(s.evacuated))
	for n := range s.evacuated {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnergyPrices returns a copy of the per-node energy prices the planner
// is currently solving under, or nil before the first evacuation.
func (s *ResilientSession) EnergyPrices() map[NodeID]int64 {
	if s.prices == nil {
		return nil
	}
	out := make(map[NodeID]int64, len(s.prices))
	for n, p := range s.prices {
		out[n] = p
	}
	return out
}

// EpochLaggingNodes returns the alive nodes still owed the current plan
// epoch's tables, ascending; every edge they touch is fenced until their
// diff lands.
func (s *ResilientSession) EpochLaggingNodes() []NodeID {
	out := make([]NodeID, 0, len(s.pendingDiff))
	for n := range s.pendingDiff {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
