package m2m

import (
	"bytes"
	"strings"
	"testing"

	"m2m/internal/failure"
	"m2m/internal/plan"
	"m2m/internal/routing"
	"m2m/internal/wire"
)

// batterySoakFixture picks a deterministic cast for the evacuation soak: a
// fixture network plus the plan's hottest relay that is not the base
// station and whose loss keeps the network connected (so the reactive arm
// can recover from its death). hotJ is the relay's fault-free per-round
// spend.
func batterySoakFixture(t *testing.T) (*Network, []Spec, fixedGen, NodeID, float64) {
	t.Helper()
	for _, seed := range []int64{13, 7, 31, 44, 58} {
		net, specs, gen := chaosFixture(t, seed)
		inst, err := net.NewInstance(specs, RouterReversePath)
		if err != nil {
			continue
		}
		p, err := Optimize(inst)
		if err != nil {
			continue
		}
		res, err := Execute(p, net, gen.Next())
		if err != nil {
			continue
		}
		hot, hotJ := NodeID(-1), 0.0
		for n, j := range res.PerNodeJ {
			if n == 0 {
				continue // the base station cannot evacuate itself
			}
			if j > hotJ || (j == hotJ && j > 0 && n < hot) {
				hot, hotJ = n, j
			}
		}
		if hot < 0 {
			continue
		}
		if g2, err := failure.RemoveNode(net.Graph, hot); err != nil || len(g2.Components()) > 2 {
			continue
		}
		return net, specs, gen, hot, hotJ
	}
	t.Fatal("no seed admits a battery soak cast")
	return nil, nil, nil, 0, 0
}

// TestBatterySoakEvacuation is the acceptance soak for the battery-aware
// runtime. The hot relay gets a battery sized to die after ~30 static
// rounds; everyone else has ample charge.
//
// Reactive arm (no evacuation): the relay browns out on schedule and the
// session condemns and replans only after the outage.
//
// Proactive arm (evacuation on): the relay's beacons trigger an
// evacuation replan before it fails, the relay survives at least 25%
// longer (strictly later first death), and the post-evacuation plan is
// byte-identical — table blobs and a full executed round — to a
// from-scratch OptimizeWithPrices on the energy-weighted topology.
func TestBatterySoakEvacuation(t *testing.T) {
	net, specs, gen, hot, hotJ := batterySoakFixture(t)
	const hotRounds = 30
	const roundCap = 150

	// --- Reactive arm: depletion handled after the fact. ---
	batA, err := NewBattery(net.Len(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := batA.SetCapacity(hot, hotJ*hotRounds); err != nil {
		t.Fatal(err)
	}
	sA, err := NewResilientSession(net, specs, RouterReversePath, gen, nil, ResilientConfig{Battery: batA})
	if err != nil {
		t.Fatal(err)
	}
	deathA := -1
	for r := 0; r < 60; r++ {
		step, err := sA.Step()
		if err != nil {
			t.Fatalf("reactive round %d: %v", r, err)
		}
		if step.Evacuations != 0 {
			t.Fatalf("reactive arm evacuated at round %d", r)
		}
		for _, n := range step.Depleted {
			if n != hot {
				t.Fatalf("round %d: unexpected depletion of %d", r, n)
			}
			deathA = r
		}
		if len(sA.Recoveries()) > 0 {
			break
		}
	}
	if deathA < 0 {
		t.Fatal("reactive arm: the undersized relay never depleted")
	}
	if deathA < hotRounds-2 || deathA > hotRounds+2 {
		t.Fatalf("reactive first death at round %d, want ~%d", deathA, hotRounds)
	}
	recsA := sA.Recoveries()
	if len(recsA) != 1 || recsA[0].Dead != hot {
		t.Fatalf("reactive recoveries %+v, want exactly the relay %d", recsA, hot)
	}
	if recsA[0].Round <= deathA {
		t.Fatalf("reactive replan at round %d not after the death at %d", recsA[0].Round, deathA)
	}
	if got := batA.FirstDeathRound(); got != deathA {
		t.Fatalf("ledger first death %d != observed %d", got, deathA)
	}

	// --- Proactive arm: beacons, forecast, evacuation replan. ---
	batB, err := NewBattery(net.Len(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := batB.SetCapacity(hot, hotJ*hotRounds); err != nil {
		t.Fatal(err)
	}
	cfg := ResilientConfig{Battery: batB, EvacuateHorizonRounds: 20, EvacuateThreshold: 0.5}
	sB, err := NewResilientSession(net, specs, RouterReversePath, gen, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evacRound := -1
	for r := 0; r < roundCap; r++ {
		step, err := sB.Step()
		if err != nil {
			t.Fatalf("proactive round %d: %v", r, err)
		}
		if step.Evacuations > 0 {
			if evacRound >= 0 {
				t.Fatalf("second evacuation at round %d (first at %d)", r, evacRound)
			}
			evacRound = r
			if got := sB.EvacuatedNodes(); len(got) != 1 || got[0] != hot {
				t.Fatalf("evacuated %v, want exactly the relay %d", got, hot)
			}
			if batB.Depleted(hot) {
				t.Fatalf("relay already dead at its own evacuation, round %d", r)
			}
			checkEvacuationByteIdentity(t, net, specs, gen, sB)
		}
		if batB.FirstDeathRound() >= 0 {
			break
		}
	}
	if evacRound < 0 {
		t.Fatal("proactive arm never evacuated")
	}
	if evacRound >= deathA {
		t.Fatalf("evacuation at round %d is not proactive (reactive death was %d)", evacRound, deathA)
	}
	deathB := batB.FirstDeathRound()
	if deathB < 0 {
		deathB = roundCap // censored: the relay outlived the whole soak
	}
	if deathB <= deathA {
		t.Fatalf("evacuation did not delay the first death: %d vs reactive %d", deathB, deathA)
	}
	if float64(deathB) < 1.25*float64(deathA) {
		t.Fatalf("lifetime gain too small: first death %d, want >= 1.25 * %d", deathB, deathA)
	}
	// No reactive recovery happened before (or because of) the evacuation.
	for _, rec := range sB.Recoveries() {
		if rec.Round <= evacRound {
			t.Fatalf("proactive arm condemned %d at round %d, before the evacuation", rec.Dead, rec.Round)
		}
	}
}

// checkEvacuationByteIdentity rebuilds, from scratch, the instance and
// plan the session's evacuation should have produced — EvacuationGraph
// with the default penalty, weighted reverse-path routing, and
// OptimizeWithPrices under the session's published prices — and checks the
// session's plan matches byte for byte: every node's table blob, and one
// executed round's values and energy.
func checkEvacuationByteIdentity(t *testing.T, net *Network, specs []Spec, gen fixedGen, s *ResilientSession) {
	t.Helper()
	prices := s.EnergyPrices()
	if prices == nil {
		t.Fatal("no energy prices published after the evacuation")
	}
	hotSet := make(map[NodeID]bool)
	for _, n := range s.EvacuatedNodes() {
		hotSet[n] = true
	}
	wg, err := failure.EvacuationGraph(net.Graph, hotSet, 8)
	if err != nil {
		t.Fatal(err)
	}
	scratchInst, err := plan.NewInstance(wg, routing.NewWeightedReversePath(wg), specs)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := plan.OptimizeWithPrices(scratchInst, prices)
	if err != nil {
		t.Fatal(err)
	}
	sessPlan := s.CurrentPlan()
	sessTab, err := sessPlan.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	scratchTab, err := scratch.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.Len(); i++ {
		n := NodeID(i)
		got, err := wire.EncodeNodeTables(sessPlan.Inst, sessTab, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wire.EncodeNodeTables(scratchInst, scratchTab, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d: incremental evacuation tables differ from a from-scratch plan", n)
		}
	}
	// One executed round must also agree bit for bit.
	want, err := Execute(scratch, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	have, err := Execute(sessPlan, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	if have.EnergyJ != want.EnergyJ {
		t.Fatalf("post-evacuation round energy %v != from-scratch %v", have.EnergyJ, want.EnergyJ)
	}
	for d, v := range want.Values {
		if have.Values[d] != v {
			t.Fatalf("post-evacuation value at %d = %v, want %v (bit-exact)", d, have.Values[d], v)
		}
	}
}

// TestBatteryAllDepletedErrors drains every node in the first round: with
// nobody left to act as base station, the session must surface the
// no-survivor error instead of silently carrying on.
func TestBatteryAllDepletedErrors(t *testing.T) {
	net := GridNetwork(2, 2, 10)
	specs := []Spec{
		{Dest: 0, Func: NewWeightedSum(map[NodeID]float64{1: 1, 2: 1, 3: 1})},
		{Dest: 1, Func: NewWeightedSum(map[NodeID]float64{0: 1})},
	}
	gen := fixedGen{0: 1, 1: 2, 2: 3, 3: 4}
	bat, err := NewBattery(net.Len(), 1e-12) // everyone browns out on their first frame
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewResilientSession(net, specs, RouterReversePath, gen, nil,
		ResilientConfig{Battery: bat, EvacuateHorizonRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Step()
	if err == nil {
		t.Fatal("a fully depleted network stepped without error")
	}
	if !strings.Contains(err.Error(), "no surviving node") {
		t.Fatalf("error %q does not name the missing base station", err)
	}
	if got := len(bat.DepletedNodes()); got != net.Len() {
		t.Fatalf("%d nodes depleted, want all %d", got, net.Len())
	}
}

// TestBatteryDepletionInsideQuarantine depletes a node while a partition
// holds its side in quarantine: the death is reported in exactly one
// step's Depleted list, the node is condemned exactly once, and nobody
// else on the severed side is condemned with it.
func TestBatteryDepletionInsideQuarantine(t *testing.T) {
	net, specs, gen := chaosFixture(t, 7)
	const (
		sideSize       = 17
		partitionStart = 3
		partitionLen   = 8
		totalRounds    = 18
	)
	side, _, y := pickChurnCast(t, net, specs, sideSize)
	if g2, err := failure.RemoveNode(net.Graph, y); err != nil || len(g2.Components()) > 2 {
		t.Skip("the in-side source is a cut vertex of this fixture")
	}

	// Size y's battery from its fault-free per-round spend: three clean
	// rounds plus a sliver, so the partition's retry inflation browns it
	// out in the partition's first round.
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := Execute(p, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	perRound := probe.PerNodeJ[y]
	if perRound <= 0 {
		t.Fatalf("cast node %d moves no traffic", y)
	}
	bat, err := NewBattery(net.Len(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := bat.SetCapacity(y, 3.4*perRound); err != nil {
		t.Fatal(err)
	}

	inj := NewFaultInjector(7).AddPartition(side, partitionStart, partitionLen)
	if err := inj.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewResilientSession(net, specs, RouterReversePath, gen, inj, ResilientConfig{Battery: bat})
	if err != nil {
		t.Fatal(err)
	}

	inSide := make(map[NodeID]bool, len(side))
	for _, n := range side {
		inSide[n] = true
	}
	deathSteps := 0
	sawQuarantine := false
	for r := 0; r < totalRounds; r++ {
		step, err := s.Step()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for _, n := range step.Depleted {
			if n != y {
				t.Fatalf("round %d: unexpected depletion of %d", r, n)
			}
			deathSteps++
			if r < partitionStart || r >= partitionStart+partitionLen {
				t.Fatalf("death at round %d landed outside the partition window", r)
			}
		}
		for _, q := range s.QuarantinedNodes() {
			if inSide[q] {
				sawQuarantine = true
			}
		}
		for _, d := range s.DeadNodes() {
			if d != y {
				t.Fatalf("round %d: false condemnation of %d (dead %v)", r, d, s.DeadNodes())
			}
		}
	}
	if deathSteps != 1 {
		t.Fatalf("the death was reported in %d steps, want exactly 1", deathSteps)
	}
	if !sawQuarantine {
		t.Fatal("the partition never quarantined the severed side")
	}
	recs := s.Recoveries()
	if len(recs) != 1 || recs[0].Dead != y {
		t.Fatalf("recoveries %+v, want exactly one for %d", recs, y)
	}
	if got := s.DeadNodes(); len(got) != 1 || got[0] != y {
		t.Fatalf("dead set %v, want exactly {%d}", got, y)
	}
}

// TestSessionLifetimeObservedBurn pins the LifetimeRounds fix: before any
// round the estimate falls back to the static full-plan burn (the
// documented lower bound on lifetime), and once suppressed rounds have
// executed the estimate uses the observed average spend — which, under
// suppression, stretches the forecast well past the static bound.
func TestSessionLifetimeObservedBurn(t *testing.T) {
	net, specs, gen := chaosFixture(t, 31)
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(p, net, PolicyNone, gen, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const batteryJ = 100.0
	staticRounds, _, err := sess.LifetimeRounds(batteryJ)
	if err != nil {
		t.Fatal(err)
	}
	if staticRounds <= 0 {
		t.Fatalf("static lifetime %d, want positive", staticRounds)
	}
	// Constant readings: the bootstrap pays full price, every suppressed
	// round after it transmits nothing.
	const rounds = 5
	for r := 0; r < rounds; r++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	obsRounds, _, err := sess.LifetimeRounds(batteryJ)
	if err != nil {
		t.Fatal(err)
	}
	// Observed average burn is bootstrap/5 per node, so the forecast must
	// stretch accordingly (integer truncation allows a little slack).
	if obsRounds < (rounds-1)*staticRounds {
		t.Fatalf("observed lifetime %d did not stretch past the static bound %d under suppression",
			obsRounds, staticRounds)
	}
}
