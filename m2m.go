// Package m2m implements many-to-many aggregation for wireless sensor
// networks, reproducing Silberstein & Yang, "Many-to-Many Aggregation for
// Sensor Networks" (ICDE 2007).
//
// A workload assigns each destination node an aggregation function over a
// set of source nodes (sources and destinations overlap arbitrarily). The
// planner minimizes radio energy by deciding, independently for every
// multicast edge, which values cross it raw (multicast-style, reusable by
// many destinations) and which cross as destination-specific partial
// aggregate records (in-network aggregation) — an exact weighted bipartite
// vertex cover per edge, assembled into a globally consistent plan
// (Theorem 1 of the paper).
//
// Typical use:
//
//	net := m2m.GreatDuckIsland()
//	specs := []m2m.Spec{{Dest: 5, Func: m2m.NewWeightedSum(weights)}}
//	inst, _ := net.NewInstance(specs, m2m.RouterReversePath)
//	p, _ := m2m.Optimize(inst)
//	res, _ := m2m.Execute(p, net, readings)
//	fmt.Println(res.Values[5], res.EnergyJ)
//
// The subsystems live in internal/ packages: topology, routing, the vertex
// cover solver, the aggregation framework, the planner, and the execution
// engine. This package is the stable facade over them.
package m2m

import (
	"fmt"
	"io"

	"m2m/internal/agg"
	"m2m/internal/graph"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
	"m2m/internal/sim"
	"m2m/internal/specfile"
	"m2m/internal/topology"
	"m2m/internal/workload"
)

// NodeID identifies a sensor node.
type NodeID = graph.NodeID

// Spec binds a destination node to its aggregation function.
type Spec = agg.Spec

// Func is an aggregation function (generalized algebraic aggregate).
type Func = agg.Func

// Record is a constant-size partial aggregate record.
type Record = agg.Record

// Instance is a resolved optimization input (network + workload + routes).
type Instance = plan.Instance

// Plan is a global many-to-many aggregation plan.
type Plan = plan.Plan

// Tables is the per-node runtime state of a plan (Section 3's four tables).
type Tables = plan.Tables

// UpdateStats quantifies an incremental re-optimization.
type UpdateStats = plan.UpdateStats

// RoundResult reports one executed round.
type RoundResult = sim.RoundResult

// FloodResult reports one flooded round.
type FloodResult = sim.FloodResult

// SuppressionRound reports one temporally suppressed round.
type SuppressionRound = sim.SuppressionRound

// Suppressor executes a plan in temporal-suppression mode.
type Suppressor = sim.Suppressor

// Policy selects an override heuristic for suppression.
type Policy = sim.Policy

// RadioModel is the per-byte energy model of the motes.
type RadioModel = radio.Model

// Battery is a per-node residual-energy ledger shared by the executors:
// they debit each node's actual radio spend and a node whose residual
// hits zero stops transmitting.
type Battery = sim.Battery

// NewBattery creates a ledger for n nodes, each starting with capacityJ
// joules of charge.
func NewBattery(n int, capacityJ float64) (*Battery, error) { return sim.NewBattery(n, capacityJ) }

// DefaultBatteryCapacityJ is the per-node capacity the CLI and
// experiments use when none is specified.
const DefaultBatteryCapacityJ = sim.DefaultBatteryCapacityJ

// Override policies (Section 3).
const (
	PolicyNone         = sim.PolicyNone
	PolicyConservative = sim.PolicyConservative
	PolicyMedium       = sim.PolicyMedium
	PolicyAggressive   = sim.PolicyAggressive
)

// Aggregation constructors re-exported from the framework.
var (
	NewWeightedSum     = agg.NewWeightedSum
	NewWeightedAverage = agg.NewWeightedAverage
	NewWeightedStdDev  = agg.NewWeightedStdDev
	NewMin             = agg.NewMin
	NewMax             = agg.NewMax
	NewRange           = agg.NewRange
	NewCountAbove      = agg.NewCountAbove
	NewQDigest         = agg.NewQDigest
	NewHyperLogLog     = agg.NewHyperLogLog
	NewTrimmedMean     = agg.NewTrimmedMean
)

// RouterKind selects the routing strategy for an instance.
type RouterKind int

// Available routers.
const (
	// RouterReversePath routes every pair along destination-rooted
	// shortest-path trees (the sensor-network standard; the planner may
	// apply counted consistency repairs).
	RouterReversePath RouterKind = iota
	// RouterSharedTree routes inside one global spanning tree, satisfying
	// both of the paper's routing restrictions so Theorem 1 applies with
	// zero repairs.
	RouterSharedTree
	// RouterSourceSPT is the paper's literal per-source shortest-path-tree
	// construction. It can violate the per-destination suffix property the
	// planner requires, in which case NewInstance returns a diagnostic
	// error; prefer RouterReversePath or RouterSharedTree.
	RouterSourceSPT
	// RouterMinDegree routes inside one low-degree global spanning tree
	// (local-search degree reduction over the BFS tree). Both routing
	// restrictions hold as for RouterSharedTree; receiver fan-in — and
	// with it per-receiver contention — is bounded, at a path-stretch
	// cost that can deepen precedence chains.
	RouterMinDegree
)

// Network bundles node placement, radio connectivity, and the energy
// model.
type Network struct {
	Layout *topology.Layout
	Graph  *graph.Undirected
	Radio  radio.Model
}

// newNetwork derives connectivity from a layout under the default radio.
func newNetwork(l *topology.Layout) *Network {
	model := radio.DefaultModel()
	return &Network{
		Layout: l,
		Graph:  l.ConnectivityGraph(model.RangeMeters),
		Radio:  model,
	}
}

// GreatDuckIsland returns the paper's evaluation network: 68 nodes in a
// 106×203 m² area with 50 m radio range (synthetic coordinates; see
// DESIGN.md §4).
func GreatDuckIsland() *Network { return newNetwork(topology.GreatDuckIsland()) }

// RandomNetwork returns n uniformly placed nodes at Great-Duck-Island
// density, repaired to be connected.
func RandomNetwork(n int, seed int64) *Network { return newNetwork(topology.Scaled(n, seed)) }

// ClusteredNetwork returns n nodes grouped around burrow-like cluster
// centers at Great-Duck-Island density (the adversarial case for planning:
// clusters make dense per-edge cover problems), connected at 50 m range.
func ClusteredNetwork(n int, seed int64) *Network {
	return newNetwork(topology.ScaledClustered(n, seed))
}

// GridNetwork returns an nx × ny lattice with the given spacing in meters.
func GridNetwork(nx, ny int, spacing float64) *Network {
	return newNetwork(topology.Grid(nx, ny, spacing))
}

// Len returns the node count.
func (n *Network) Len() int { return n.Graph.Len() }

// NewInstance resolves routes for the workload under the chosen router.
func (n *Network) NewInstance(specs []Spec, kind RouterKind) (*Instance, error) {
	var router routing.Router
	switch kind {
	case RouterReversePath:
		router = routing.NewReversePath(n.Graph)
	case RouterSharedTree:
		st, err := routing.NewSharedTree(n.Graph)
		if err != nil {
			return nil, err
		}
		router = st
	case RouterSourceSPT:
		router = routing.NewSourceSPT(n.Graph)
	case RouterMinDegree:
		mt, err := routing.NewMinDegreeTree(n.Graph)
		if err != nil {
			return nil, err
		}
		router = mt
	default:
		return nil, fmt.Errorf("m2m: unknown router kind %d", kind)
	}
	return plan.NewInstance(n.Graph, router, specs)
}

// WorkloadConfig parameterizes random workload generation (the paper's
// evaluation workloads).
type WorkloadConfig = workload.Config

// GenerateWorkload draws a random workload over the network (see
// workload.Config for the dispersion semantics).
func (n *Network) GenerateWorkload(cfg WorkloadConfig) ([]Spec, error) {
	return workload.Generate(n.Graph, cfg)
}

// ParseWorkload reads a workload from the textual format documented in
// internal/specfile: `<dest> = <kind>(<src>[:<weight>], ...) [@ <thr>]`.
func ParseWorkload(r io.Reader) ([]Spec, error) { return specfile.Parse(r) }

// FormatWorkload writes specs in the same textual format ParseWorkload
// reads.
func FormatWorkload(w io.Writer, specs []Spec) error { return specfile.Format(w, specs) }

// Optimize computes the paper's optimal plan (per-edge vertex covers with
// the canonical tiebreak, assembled per Theorem 1).
func Optimize(inst *Instance) (*Plan, error) { return plan.Optimize(inst) }

// Multicast returns the pure-multicast baseline plan.
func Multicast(inst *Instance) *Plan { return plan.Multicast(inst) }

// AggregateASAP returns the pure in-network aggregation baseline plan.
func AggregateASAP(inst *Instance) *Plan { return plan.AggregateASAP(inst) }

// Reoptimize incrementally replans after a workload change, reusing every
// unchanged single-edge solution (Corollary 1).
func Reoptimize(old *Plan, inst *Instance) (*Plan, *UpdateStats, error) {
	return plan.Reoptimize(old, inst)
}

// Execute runs one round of p on net with the given readings, returning
// the destinations' exact aggregates and the round's communication cost.
func Execute(p *Plan, net *Network, readings map[NodeID]float64) (*RoundResult, error) {
	eng, err := sim.NewEngine(p, net.Radio, sim.Options{MergeMessages: true})
	if err != nil {
		return nil, err
	}
	return eng.Run(readings)
}

// Flood runs the paper's flood baseline for one round.
func Flood(net *Network, specs []Spec, readings map[NodeID]float64) (*FloodResult, error) {
	return sim.Flood(net.Graph, specs, net.Radio, readings)
}

// OutOfNetworkResult reports one round of base-station-mediated control.
type OutOfNetworkResult = sim.OutOfNetworkResult

// OutOfNetwork runs the introduction's strawman for one round: sources
// report to a base station, which computes and returns all control
// signals.
func OutOfNetwork(net *Network, specs []Spec, base NodeID, readings map[NodeID]float64) (*OutOfNetworkResult, error) {
	return sim.OutOfNetwork(net.Graph, specs, net.Radio, base, readings)
}

// NewSuppressor prepares temporal-suppression execution of p under the
// given override policy. All aggregation functions must be linear
// (weighted sums).
func NewSuppressor(p *Plan, net *Network, policy Policy) (*Suppressor, error) {
	return sim.NewSuppressor(p, net.Radio, policy)
}
