package m2m

import (
	"bytes"
	"math"
	"testing"

	"m2m/internal/chaos"
	"m2m/internal/failure"
	"m2m/internal/wire"
)

// byzantineFixture builds the adversarial soak cast: a 24-node grid,
// three destinations estimating the same physical field over the same 20
// sources — exact weighted average, trimmed mean, q-digest median — and
// honest readings in a narrow [20, 22] band so a robust center is sharp.
func byzantineFixture(t *testing.T) (*Network, []Spec, fixedGen, []NodeID) {
	t.Helper()
	net := GridNetwork(6, 4, 10)
	var sources []NodeID
	weights := make(map[NodeID]float64)
	for i := 1; i <= 20; i++ {
		sources = append(sources, NodeID(i))
		weights[NodeID(i)] = 1
	}
	tm, err := NewTrimmedMean(sources, 6, 0, 100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := NewQDigest(sources, 6, 0, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Dest: 21, Func: NewWeightedAverage(weights)},
		{Dest: 22, Func: tm},
		{Dest: 23, Func: qd},
	}
	gen := make(fixedGen, net.Len())
	for i := 0; i < net.Len(); i++ {
		gen[NodeID(i)] = 20 + float64(i%5)*0.5
	}
	return net, specs, gen, sources
}

// byzantineInjector arms ⌊n/4⌋ = 6 of the 24 nodes with mixed misbehavior:
// four permanent liars (stuck high, amplified high, sprayed, amplified
// low) and two windowed ones (drifting offset, stuck low) that reform
// after round 6 — the re-admission candidates.
func byzantineInjector(seed int64) (*FaultInjector, map[NodeID]bool, map[NodeID]bool) {
	inj := NewFaultInjector(seed).
		WithByzantine(2, chaos.ByzStuck, 2000, 0, chaos.Forever).
		WithByzantine(5, chaos.ByzAmplify, 100, 0, chaos.Forever).
		WithByzantine(8, chaos.ByzSpray, 500, 0, chaos.Forever).
		WithByzantine(17, chaos.ByzAmplify, -30, 0, chaos.Forever).
		WithByzantine(11, chaos.ByzOffset, 25, 0, 6).
		WithByzantine(14, chaos.ByzStuck, -400, 0, 6)
	permanent := map[NodeID]bool{2: true, 5: true, 8: true, 17: true}
	windowed := map[NodeID]bool{11: true, 14: true}
	return inj, permanent, windowed
}

// honestTruth executes one fault-free round and returns the three
// destinations' honest estimates.
func honestTruth(t *testing.T, net *Network, specs []Spec, gen fixedGen) map[NodeID]float64 {
	t.Helper()
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

// TestByzantineRobustAggregates is the no-quarantine arm of the soak:
// under six mixed-mode liars the exact weighted average diverges far from
// the honest truth every round, while the trimmed mean and the q-digest
// median stay within a few bucket widths of it.
func TestByzantineRobustAggregates(t *testing.T) {
	net, specs, gen, _ := byzantineFixture(t)
	truth := honestTruth(t, net, specs, gen)
	inj, _, _ := byzantineInjector(909)
	if err := inj.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewResilientSession(net, specs, RouterReversePath, gen, inj, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		step, err := s.Step()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if len(step.Suspects) != 0 || len(step.Excisions) != 0 {
			t.Fatalf("round %d: audit ran without a Byzantine config", r)
		}
		if got := math.Abs(step.Values[21] - truth[21]); got < 50 {
			t.Fatalf("round %d: exact wavg error %v, want divergence > 50", r, got)
		}
		if got := math.Abs(step.Values[22] - truth[22]); got > 10 {
			t.Fatalf("round %d: trimmed-mean error %v, want < 10", r, got)
		}
		if got := math.Abs(step.Values[23] - truth[23]); got > 10 {
			t.Fatalf("round %d: q-digest median error %v, want < 10", r, got)
		}
	}
}

// TestByzantineQuarantineSoak is the acceptance soak for the quarantine
// loop: the audit excises exactly the six liars (zero false quarantines),
// the two windowed liars are re-admitted after sustained clean behavior,
// the healed exact average converges back to the honest truth, and the
// post-excision plan is byte-identical to a from-scratch Optimize on the
// pruned workload.
func TestByzantineQuarantineSoak(t *testing.T) {
	net, specs, gen, _ := byzantineFixture(t)
	truth := honestTruth(t, net, specs, gen)
	inj, permanent, windowed := byzantineInjector(909)
	if err := inj.Validate(); err != nil {
		t.Fatal(err)
	}
	liars := make(map[NodeID]bool)
	for n := range permanent {
		liars[n] = true
	}
	for n := range windowed {
		liars[n] = true
	}
	cfg := ResilientConfig{Byzantine: &ByzantineConfig{}}
	s, err := NewResilientSession(net, specs, RouterReversePath, gen, inj, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	everSuspect := make(map[NodeID]bool)
	readmitted := make(map[NodeID]bool)
	for r := 0; r < rounds; r++ {
		step, err := s.Step()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for _, n := range step.Suspects {
			if !liars[n] {
				t.Fatalf("round %d: honest node %d flagged suspect", r, n)
			}
			everSuspect[n] = true
		}
		for _, ev := range step.Excisions {
			if !liars[ev.Node] {
				t.Fatalf("round %d: honest node %d excised (false quarantine)", r, ev.Node)
			}
			if ev.Round != r || ev.ReadmittedRound != -1 || ev.ReplanBytes <= 0 {
				t.Fatalf("round %d: malformed excision event %+v", r, ev)
			}
		}
		for _, n := range step.Readmissions {
			if !windowed[n] {
				t.Fatalf("round %d: node %d re-admitted but never reformed", r, n)
			}
			readmitted[n] = true
		}
		// The healed workload keeps the exact average near the truth once
		// the liars are out and the epochs have settled.
		if r >= 20 {
			if got := math.Abs(step.Values[21] - truth[21]); got > 5 {
				t.Fatalf("round %d: post-excision wavg error %v, want < 5", r, got)
			}
			if got := math.Abs(step.Values[22] - truth[22]); got > 10 {
				t.Fatalf("round %d: post-excision trimmed-mean error %v, want < 10", r, got)
			}
		}
	}

	for n := range liars {
		if !everSuspect[n] {
			t.Fatalf("liar %d was never flagged suspect", n)
		}
	}
	for n := range windowed {
		if !readmitted[n] {
			t.Fatalf("reformed liar %d was never re-admitted", n)
		}
	}
	excised := s.ExcisedNodes()
	if len(excised) != len(permanent) {
		t.Fatalf("final excised set %v, want exactly the permanent liars", excised)
	}
	for _, n := range excised {
		if !permanent[n] {
			t.Fatalf("final excised set %v contains non-permanent node %d", excised, n)
		}
	}
	for _, ev := range s.Excisions() {
		switch {
		case permanent[ev.Node] && ev.ReadmittedRound != -1:
			t.Fatalf("permanent liar %d marked re-admitted: %+v", ev.Node, ev)
		case windowed[ev.Node] && ev.ReadmittedRound < 0:
			t.Fatalf("reformed liar %d still marked excised: %+v", ev.Node, ev)
		}
	}
	if lag := s.EpochLaggingNodes(); len(lag) != 0 {
		t.Fatalf("epochs never settled: %v still lagging", lag)
	}
	if len(s.DeadNodes()) != 0 || len(s.Recoveries()) != 0 {
		t.Fatalf("excision leaked into the failure machinery: dead %v, recoveries %v",
			s.DeadNodes(), s.Recoveries())
	}
	checkExcisionByteIdentity(t, net, specs, gen, s)
}

// checkExcisionByteIdentity rebuilds, from scratch, the plan the
// session's excisions should have produced — the pristine workload pruned
// by each excised node in ascending order, routed and optimized on the
// unchanged graph — and checks the session's plan matches byte for byte:
// every node's table blob, and one executed round's values and energy.
func checkExcisionByteIdentity(t *testing.T, net *Network, specs []Spec, gen fixedGen, s *ResilientSession) {
	t.Helper()
	pruned := append([]Spec(nil), specs...)
	for _, n := range s.ExcisedNodes() {
		p, _, err := failure.PruneSpecs(pruned, n)
		if err != nil {
			t.Fatal(err)
		}
		pruned = p
	}
	scratchInst, err := net.NewInstance(pruned, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Optimize(scratchInst)
	if err != nil {
		t.Fatal(err)
	}
	sessPlan := s.CurrentPlan()
	sessTab, err := sessPlan.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	scratchTab, err := scratch.BuildTables()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.Len(); i++ {
		n := NodeID(i)
		got, err := wire.EncodeNodeTables(sessPlan.Inst, sessTab, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wire.EncodeNodeTables(scratchInst, scratchTab, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d: incremental excision tables differ from a from-scratch plan", n)
		}
	}
	want, err := Execute(scratch, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	have, err := Execute(sessPlan, net, gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	if have.EnergyJ != want.EnergyJ {
		t.Fatalf("post-excision round energy %v != from-scratch %v", have.EnergyJ, want.EnergyJ)
	}
	for d, v := range want.Values {
		if math.Float64bits(have.Values[d]) != math.Float64bits(v) {
			t.Fatalf("post-excision value at %d = %v, want %v (bit-exact)", d, have.Values[d], v)
		}
	}
}

// TestByzantineConfigValidation pins the config guard rails.
func TestByzantineConfigValidation(t *testing.T) {
	net, specs, gen, _ := byzantineFixture(t)
	for _, bad := range []ByzantineConfig{
		{GateK: -1},
		{Window: -2},
		{CleanRounds: -1},
		{MinScale: -0.5},
		{GateK: math.NaN()},
	} {
		_, err := NewResilientSession(net, specs, RouterReversePath, gen, nil, ResilientConfig{Byzantine: &bad})
		if err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

// TestByzantineHonestNoOp pins the honest-network contract: a session with
// the audit armed but a lie-free schedule never suspects, never excises,
// and keeps every round's estimates bit-identical to a fault-free session.
func TestByzantineHonestNoOp(t *testing.T) {
	net, specs, gen, _ := byzantineFixture(t)
	inj := NewFaultInjector(77) // injects nothing
	audited, err := NewResilientSession(net, specs, RouterReversePath, gen, inj, ResilientConfig{Byzantine: &ByzantineConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewResilientSession(net, specs, RouterReversePath, gen, nil, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		a, err := audited.Step()
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Suspects) != 0 || len(a.Excisions) != 0 || len(a.Readmissions) != 0 {
			t.Fatalf("round %d: audit fired on an honest network: %+v", r, a)
		}
		for d, v := range b.Values {
			if math.Float64bits(a.Values[d]) != math.Float64bits(v) {
				t.Fatalf("round %d: audited value at %d = %v, plain %v (bit-exact)", r, d, a.Values[d], v)
			}
		}
		if a.EnergyJ != b.EnergyJ {
			t.Fatalf("round %d: audited energy %v != plain %v", r, a.EnergyJ, b.EnergyJ)
		}
	}
	if got := audited.ExcisedNodes(); len(got) != 0 {
		t.Fatalf("honest network excised %v", got)
	}
}
