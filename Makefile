# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test test-short race cover bench bench-plan-scale bench-serve figures examples serve fuzz-scenarios fuzz-soak clean

all: check

# The default gate: compile, static checks, full tests, race-checked
# short tests.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

# The CI smoke: 500 seeded fault scenarios through the full resilient
# stack with every invariant checker armed, under the race detector.
fuzz-scenarios:
	$(GO) run -race ./cmd/m2mfuzz -n 500 -q

# Overnight soak: keep drawing seeds and checking invariants until the
# clock runs out (~275 scenarios/sec without -race). Failing seeds are
# shrunk to repro-seed<N>.json in the working directory.
FUZZ_SOAK_DURATION ?= 10m
fuzz-soak:
	$(GO) run ./cmd/m2mfuzz -n 0 -duration $(FUZZ_SOAK_DURATION) -q

# One testing.B benchmark per paper figure/table plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in planner scaling artifact (68/1k/10k nodes).
bench-plan-scale:
	$(GO) run ./cmd/m2mbench -plan-scale -topo-size 68,1000,10000 -json > BENCH_plan_scale.json

# Run the session server with default admission/deadline settings.
SERVE_ADDR ?= :8437
serve:
	$(GO) run ./cmd/m2md -addr $(SERVE_ADDR)

# Regenerate the checked-in serving-throughput artifact: boots a local
# m2md, drives 1/100/1000 concurrent sessions, writes BENCH_serve.json.
bench-serve:
	$(GO) build -o /tmp/m2md-bench ./cmd/m2md
	/tmp/m2md-bench -addr :18437 & echo $$! > /tmp/m2md-bench.pid; sleep 1
	$(GO) run ./cmd/m2mload -addr http://localhost:18437 \
		-bench -levels 1,100,1000 -rounds 20 -step 5 -tenants 8 \
		-bench-out BENCH_serve.json; \
	status=$$?; kill `cat /tmp/m2md-bench.pid`; rm -f /tmp/m2md-bench.pid; exit $$status

# Regenerate every evaluation figure and ablation at full scale.
figures:
	$(GO) run ./cmd/m2mbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sapflux
	$(GO) run ./examples/wildlife
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/failover
	$(GO) run ./examples/motes

clean:
	$(GO) clean ./...
