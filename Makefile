# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test test-short race cover bench bench-plan-scale figures examples clean

all: check

# The default gate: compile, static checks, full tests, race-checked
# short tests.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper figure/table plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in planner scaling artifact (68/1k/10k nodes).
bench-plan-scale:
	$(GO) run ./cmd/m2mbench -plan-scale -topo-size 68,1000,10000 -json > BENCH_plan_scale.json

# Regenerate every evaluation figure and ablation at full scale.
figures:
	$(GO) run ./cmd/m2mbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sapflux
	$(GO) run ./examples/wildlife
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/failover
	$(GO) run ./examples/motes

clean:
	$(GO) clean ./...
