package m2m

import (
	"testing"
	"time"
)

// TestPlanScale10k is the interactive-planning acceptance test: building a
// 10 000-node uniform topology, drawing a 200-destination workload,
// resolving routes, and optimizing the plan must all complete within an
// interactive budget. Under -short the size drops to 2000 nodes so the
// race detector can afford it.
func TestPlanScale10k(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 2000
	}
	start := time.Now()
	net := RandomNetwork(n, 1)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests:       n / 50,
		SourcesPerDest: 20,
		Dispersion:     0.9,
		MaxHops:        4,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if got := len(p.Sol); got == 0 {
		t.Fatal("empty plan at scale")
	}
	if _, _, err := Reoptimize(p, inst); err != nil {
		t.Fatal(err)
	}
	// Generous against slow CI machines; locally the whole pipeline runs
	// in ~1.5 s at n=10000.
	if limit := 10 * time.Second; elapsed > limit {
		t.Fatalf("end-to-end planning at n=%d took %v, want < %v", n, elapsed, limit)
	}
	t.Logf("n=%d: topology+workload+instance+optimize in %v (%d edges solved)", n, elapsed, len(p.Sol))
}
