package m2m

import (
	"math"
	"testing"
)

// TestIntegrationCrossAlgorithmAgreement runs every execution path the
// library offers — the three plans, flooding, out-of-network control, and
// a suppressed session — over the same workload and demands they agree on
// every destination's value, round after round.
func TestIntegrationCrossAlgorithmAgreement(t *testing.T) {
	net := GreatDuckIsland()
	specs, err := net.GenerateWorkload(WorkloadConfig{
		DestFraction:   0.25,
		SourcesPerDest: 12,
		Dispersion:     0.9,
		MaxHops:        4,
		Seed:           2024,
	})
	if err != nil {
		t.Fatal(err)
	}

	type planned struct {
		name string
		p    *Plan
	}
	var plans []planned
	for _, kind := range []RouterKind{RouterReversePath, RouterSharedTree} {
		inst, err := net.NewInstance(specs, kind)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(inst)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans,
			planned{"optimal", opt},
			planned{"multicast", Multicast(inst)},
			planned{"aggregation", AggregateASAP(inst)},
		)
	}

	gen := NewRandomWalkReadings(net.Len(), 5, 20, 3)
	for round := 0; round < 5; round++ {
		readings := gen.Next()

		// Reference: flood (destinations compute locally from raw values).
		fl, err := Flood(net, specs, readings)
		if err != nil {
			t.Fatal(err)
		}
		oon, err := OutOfNetwork(net, specs, 0, readings)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range plans {
			res, err := Execute(pl.p, net, readings)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, pl.name, err)
			}
			for d, v := range fl.Values {
				if math.Abs(res.Values[d]-v) > 1e-6*(1+math.Abs(v)) {
					t.Fatalf("round %d: %s disagrees with flood at %d: %v vs %v",
						round, pl.name, d, res.Values[d], v)
				}
				if math.Abs(oon.Values[d]-v) > 1e-6*(1+math.Abs(v)) {
					t.Fatalf("round %d: out-of-network disagrees with flood at %d", round, d)
				}
			}
		}
	}
}

// TestIntegrationSessionLongRun drives a suppressed session for many
// rounds with drifting readings and verifies the maintained values never
// deviate from direct evaluation (no error accumulation in the delta
// pipeline).
func TestIntegrationSessionLongRun(t *testing.T) {
	net := RandomNetwork(60, 31)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests: 10, SourcesPerDest: 8, Dispersion: 0.8, MaxHops: 4, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(p, net, PolicyAggressive, NewRandomWalkReadings(net.Len(), 31, 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewRandomWalkReadings(net.Len(), 31, 0, 1)
	for round := 0; round < 40; round++ {
		step, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		cur := ref.Next()
		for _, sp := range specs {
			want := 0.0
			wf := sp.Func.(interface{ Weight(NodeID) float64 })
			for _, s := range sp.Func.Sources() {
				want += wf.Weight(s) * cur[s]
			}
			if got := step.Values[sp.Dest]; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("round %d: drift at destination %d: %v vs %v", round, sp.Dest, got, want)
			}
		}
	}
	if sess.TotalEnergyJ() <= 0 {
		t.Error("session consumed no energy")
	}
}

// TestIntegrationLifetimeOrdering checks the headline lifetime result:
// optimal must outlive both pure strategies on the evaluation workload.
func TestIntegrationLifetimeOrdering(t *testing.T) {
	net := GreatDuckIsland()
	specs, err := net.GenerateWorkload(WorkloadConfig{
		DestFraction:   0.3,
		SourcesPerDest: 15,
		Dispersion:     0.9,
		MaxHops:        4,
		Seed:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	life := func(p *Plan) int {
		sess, err := NewSession(p, net, PolicyNone, NewConstantReadings(net.Len(), 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		rounds, _, err := sess.LifetimeRounds(1000)
		if err != nil {
			t.Fatal(err)
		}
		return rounds
	}
	lOpt := life(opt)
	if lMc := life(Multicast(inst)); lOpt < lMc {
		t.Errorf("optimal lifetime %d below multicast %d", lOpt, lMc)
	}
	if lAg := life(AggregateASAP(inst)); lOpt < lAg {
		t.Errorf("optimal lifetime %d below aggregation %d", lOpt, lAg)
	}
}
