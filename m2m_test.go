package m2m

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	net := GreatDuckIsland()
	if net.Len() != 68 {
		t.Fatalf("GDI nodes = %d", net.Len())
	}
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests:       8,
		SourcesPerDest: 10,
		Dispersion:     0.9,
		MaxHops:        4,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	readings := make(map[NodeID]float64, net.Len())
	for i := 0; i < net.Len(); i++ {
		readings[NodeID(i)] = float64(i) * 0.25
	}
	res, err := Execute(p, net, readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != len(specs) {
		t.Fatalf("values for %d destinations, want %d", len(res.Values), len(specs))
	}
	if res.EnergyJ <= 0 || res.Messages <= 0 {
		t.Errorf("degenerate round: %+v", res)
	}

	// Optimal beats both baselines.
	for _, mk := range []func(*Instance) *Plan{Multicast, AggregateASAP} {
		base, err := Execute(mk(inst), net, readings)
		if err != nil {
			t.Fatal(err)
		}
		if res.EnergyJ > base.EnergyJ+1e-12 {
			t.Errorf("optimal %v J > baseline %v J", res.EnergyJ, base.EnergyJ)
		}
	}

	// Flood agrees on values and costs more.
	fl, err := Flood(net, specs, readings)
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range res.Values {
		if math.Abs(fl.Values[d]-v) > 1e-6*(1+math.Abs(v)) {
			t.Errorf("flood value at %d = %v, plan value %v", d, fl.Values[d], v)
		}
	}
	if fl.EnergyJ < res.EnergyJ {
		t.Errorf("flood %v J cheaper than optimal %v J", fl.EnergyJ, res.EnergyJ)
	}
}

func TestFacadeSharedTreeRouter(t *testing.T) {
	net := RandomNetwork(50, 3)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests: 6, SourcesPerDest: 6, Dispersion: 0.5, MaxHops: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterSharedTree)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if p.Repairs != 0 {
		t.Errorf("shared-tree router needed %d repairs", p.Repairs)
	}
}

func TestFacadeSuppression(t *testing.T) {
	net := GridNetwork(6, 6, 30)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests: 5, SourcesPerDest: 5, Dispersion: 0.9, MaxHops: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSuppressor(p, net, PolicyMedium)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sup.Round(map[NodeID]float64{specs[0].Func.Sources()[0]: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 {
		t.Error("suppressed round with one change cost nothing")
	}
}

func TestFacadeReoptimize(t *testing.T) {
	net := RandomNetwork(40, 9)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests: 5, SourcesPerDest: 5, Dispersion: 0.5, MaxHops: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := net.NewInstance(specs, RouterSharedTree)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stats, err := Reoptimize(old, inst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EdgesReused != stats.EdgesTotal {
		t.Errorf("identical instance reused %d of %d edges", stats.EdgesReused, stats.EdgesTotal)
	}
	if fresh.TotalBodyBytes() != old.TotalBodyBytes() {
		t.Error("reoptimized identical instance changed cost")
	}
}

func TestFacadeRejectsUnknownRouter(t *testing.T) {
	net := GridNetwork(3, 3, 30)
	specs, err := net.GenerateWorkload(WorkloadConfig{NumDests: 1, SourcesPerDest: 2, Dispersion: 0.5, MaxHops: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewInstance(specs, RouterKind(42)); err == nil {
		t.Error("unknown router accepted")
	}
}
