package m2m

import (
	"math"
	"math/rand"
	"testing"

	"m2m/internal/motesim"
	"m2m/internal/plan"
	"m2m/internal/radio"
	"m2m/internal/routing"
	"m2m/internal/sim"
)

// TestSoak sweeps the whole stack across topologies, routers, workload
// shapes, and function mixes: every combination must plan, validate,
// build tables, execute with exact values, and (for linear workloads)
// run a suppressed round. This is the wide-net regression the individual
// package tests don't cast.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(4242))

	type topo struct {
		name string
		mk   func(seed int64) *Network
	}
	topos := []topo{
		{"gdi", func(int64) *Network { return GreatDuckIsland() }},
		{"random80", func(seed int64) *Network { return RandomNetwork(80, seed) }},
		{"grid", func(int64) *Network { return GridNetwork(9, 7, 35) }},
	}
	routers := []RouterKind{RouterReversePath, RouterSharedTree}

	cases := 0
	for _, tp := range topos {
		for _, rk := range routers {
			for variant := 0; variant < 3; variant++ {
				seed := rng.Int63()
				net := tp.mk(seed)
				cfg := WorkloadConfig{
					NumDests:       3 + variant*4,
					SourcesPerDest: 4 + variant*5,
					Dispersion:     float64(variant) / 2,
					MaxHops:        4,
					Seed:           seed,
				}
				if variant == 2 {
					cfg.MaxHops = 0 // uniform network-wide sources
					cfg.Dispersion = 0
				}
				specs, err := net.GenerateWorkload(cfg)
				if err != nil {
					t.Fatalf("%s/%d/%d: workload: %v", tp.name, rk, variant, err)
				}
				inst, err := net.NewInstance(specs, rk)
				if err != nil {
					t.Fatalf("%s/%d/%d: instance: %v", tp.name, rk, variant, err)
				}
				p, err := Optimize(inst)
				if err != nil {
					t.Fatalf("%s/%d/%d: optimize: %v", tp.name, rk, variant, err)
				}
				if rk == RouterSharedTree && p.Repairs != 0 {
					t.Fatalf("%s/%d/%d: Theorem 1 violated (%d repairs)", tp.name, rk, variant, p.Repairs)
				}
				if _, err := p.BuildTables(); err != nil {
					t.Fatalf("%s/%d/%d: tables: %v", tp.name, rk, variant, err)
				}

				readings := make(map[NodeID]float64, net.Len())
				for i := 0; i < net.Len(); i++ {
					readings[NodeID(i)] = rng.NormFloat64() * 8
				}
				res, err := Execute(p, net, readings)
				if err != nil {
					t.Fatalf("%s/%d/%d: execute: %v", tp.name, rk, variant, err)
				}
				fl, err := Flood(net, specs, readings)
				if err != nil {
					t.Fatalf("%s/%d/%d: flood: %v", tp.name, rk, variant, err)
				}
				for d, v := range fl.Values {
					if math.Abs(res.Values[d]-v) > 1e-6*(1+math.Abs(v)) {
						t.Fatalf("%s/%d/%d: value mismatch at %d", tp.name, rk, variant, d)
					}
				}
				if res.EnergyJ <= 0 {
					t.Fatalf("%s/%d/%d: free round", tp.name, rk, variant)
				}

				// Suppressed round (generated workloads are weighted sums).
				sup, err := NewSuppressor(p, net, PolicyMedium)
				if err != nil {
					t.Fatalf("%s/%d/%d: suppressor: %v", tp.name, rk, variant, err)
				}
				deltas := make(map[NodeID]float64)
				for _, s := range inst.Sources() {
					if rng.Float64() < 0.3 {
						deltas[s] = rng.NormFloat64()
					}
				}
				if _, err := sup.Round(deltas); err != nil {
					t.Fatalf("%s/%d/%d: suppression: %v", tp.name, rk, variant, err)
				}
				cases++
			}
		}
	}
	if cases != len(topos)*len(routers)*3 {
		t.Fatalf("ran %d cases", cases)
	}
}

// TestSoakMilestoneAndMotes adds the milestone router and the mote-level
// executor to the sweep on a couple of configurations.
func TestSoakMilestoneAndMotes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	net := RandomNetwork(60, 5)
	specs, err := net.GenerateWorkload(WorkloadConfig{
		NumDests: 8, SourcesPerDest: 8, Dispersion: 0.9, MaxHops: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Milestone-contracted planning executes exactly.
	mr := routing.NewMilestoneRouter(net.Graph, routing.NewReversePath(net.Graph), routing.KeepEveryKth(3))
	inst, err := plan.NewInstance(net.Graph, mr, specs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(p, radio.DefaultModel(), sim.Options{MergeMessages: true, EdgeHops: mr.EdgeHops})
	if err != nil {
		t.Fatal(err)
	}
	readings := make(map[NodeID]float64, net.Len())
	for i := 0; i < net.Len(); i++ {
		readings[NodeID(i)] = math.Round(rng.NormFloat64()*10*256) / 256
	}
	if _, err := eng.Run(readings); err != nil {
		t.Fatal(err)
	}

	// Mote-level execution of the plain plan.
	inst2, err := net.NewInstance(specs, RouterReversePath)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Optimize(inst2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := motesim.Run(inst2, p2, readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != len(specs) {
		t.Fatalf("motes served %d of %d destinations", len(res.Values), len(specs))
	}
}
